//! The typed stage graph: every flow as one DAG of cacheable stages.
//!
//! The paper's combined implementation is a pipeline — synthesize, merge,
//! place, route, tune per mode — but the flows in this crate historically
//! encoded that pipeline as hand-wired monolithic functions. This module
//! makes the decomposition first-class:
//!
//! * a [`Stage`] is one unit of work with a name, stable parameters and a
//!   typed output (an [`Artifact`] variant, declared via [`ArtifactKind`]);
//! * a [`StagePlan`] is a DAG of stages over one [`MultiModeInput`],
//!   assembled with [`PlanBuilder`] and executed with
//!   [`StagePlan::execute`];
//! * [`dcs_plan`], [`mdr_plan`] and [`combined_plan`] compile the three
//!   flow flavors to plans — per-mode/variant annealing legs fan out, the
//!   summarizing route/tune stage joins them.
//!
//! # Fingerprints and cache sharing
//!
//! Every node carries a **structural fingerprint**: a length-prefixed
//! composition of the stage name, the stage parameters, the input
//! fingerprint (the canonical BLIF of every mode) and the fingerprints of
//! its dependencies. Two nodes with equal fingerprints compute the same
//! artifact, so a cache keyed by node fingerprint shares work across
//! plans automatically. In particular the annealing legs of a combined
//! plan fingerprint **identically** to the placement nodes of the plain
//! `dcs`/`mdr` plans on the same mode list — the pair↔plain placement
//! sharing the batch engine used to hand-roll is now just the general
//! case. Display labels ([`PlanNode::label`]) are deliberately excluded
//! from fingerprints.
//!
//! Caching itself stays outside this crate: the executor consults a
//! [`PlanHooks`] implementation per node ([`Lookup::Hit`] short-circuits
//! the node *and everything only it demanded*), and offers every computed
//! artifact back via [`PlanHooks::store`]. [`NoHooks`] runs a plan
//! uncached.
//!
//! # Execution, determinism and telemetry
//!
//! [`StagePlan::execute`] resolves the DAG demand-driven from the root:
//! a cache hit on a node means its dependencies are never even looked
//! up. The remaining nodes run bottom-up in ready waves on the
//! work-stealing [`pool`]; every stage is independently seeded, so the
//! artifact is byte-identical at any parallelism. Each resolved node
//! records wall-clock time and its cache outcome in a [`StageTiming`],
//! returned alongside the artifact in [`PlanRun`].

use crate::flow::{DcsFlow, FlowOptions, MdrFlow, MultiModeInput};
use crate::pool;
use crate::{
    run_combined_with_placements, CombinedMetrics, CombinedPlacements, FlowError, TunableStats,
};
use mm_bitstream::RewriteCost;
use mm_netlist::blif;
use mm_place::{CostKind, MultiPlacement, Placement, PlacerOptions};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ------------------------------------------------------------- summaries

/// Numeric summary of one DCS run (everything a batch reports).
#[derive(Debug, Clone, PartialEq)]
pub struct DcsSummary {
    /// Array side length.
    pub grid: usize,
    /// Final channel width.
    pub channel_width: usize,
    /// Mode count.
    pub modes: usize,
    /// Parameterized routing bits (the paper's headline per-switch cost).
    pub param_bits: usize,
    /// Statically-on routing bits.
    pub static_on_bits: usize,
    /// DCS rewrite cost.
    pub dcs_cost: RewriteCost,
    /// MDR rewrite cost on the same fabric.
    pub mdr_cost: RewriteCost,
    /// Wires used per mode.
    pub wires: Vec<usize>,
    /// Per-mode critical-path delays from routed STA, populated only
    /// when the run asked for the timing cost (`None` otherwise so
    /// default result records stay byte-identical).
    pub critical_paths: Option<Vec<f64>>,
    /// Tunable-circuit statistics.
    pub tunable: TunableStats,
}

/// Numeric summary of one MDR run.
#[derive(Debug, Clone, PartialEq)]
pub struct MdrSummary {
    /// Array side length.
    pub grid: usize,
    /// Final channel width.
    pub channel_width: usize,
    /// Mode count.
    pub modes: usize,
    /// Full-region rewrite cost.
    pub mdr_cost: RewriteCost,
    /// Diff-based rewrite cost, averaged over ordered mode pairs.
    pub avg_diff_cost: RewriteCost,
    /// Wires used per mode.
    pub wires: Vec<usize>,
}

// -------------------------------------------------------------- artifacts

/// A typed value flowing along a plan edge.
///
/// Placement artifacts are `Arc`-shared: a hit or computed placement is
/// handed to every consumer without copying the site tables.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Per-mode MDR placements (one independent annealing per mode).
    MdrPlacements(Arc<Vec<Placement>>),
    /// A combined placement of all modes.
    CombinedPlacement(Arc<MultiPlacement>),
    /// A finished DCS summary.
    Dcs(DcsSummary),
    /// A finished MDR summary.
    Mdr(MdrSummary),
    /// The finished combined comparison (`name` left empty — the plan
    /// does not know job names; callers fill it in).
    Combined(CombinedMetrics),
}

impl Artifact {
    /// The kind tag of this artifact.
    #[must_use]
    pub fn kind(&self) -> ArtifactKind {
        match self {
            Artifact::MdrPlacements(_) => ArtifactKind::MdrPlacements,
            Artifact::CombinedPlacement(_) => ArtifactKind::CombinedPlacement,
            Artifact::Dcs(_) => ArtifactKind::Dcs,
            Artifact::Mdr(_) => ArtifactKind::Mdr,
            Artifact::Combined(_) => ArtifactKind::Combined,
        }
    }
}

/// The kind of artifact a stage declares it produces — what lets hooks
/// pick a cache namespace and codec per node without downcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Per-mode MDR placements.
    MdrPlacements,
    /// A combined placement.
    CombinedPlacement,
    /// A DCS summary.
    Dcs,
    /// An MDR summary.
    Mdr,
    /// Combined-comparison metrics.
    Combined,
}

impl ArtifactKind {
    /// Whether this kind is an annealing (placement) artifact rather
    /// than a finished summary.
    #[must_use]
    pub fn is_placement(self) -> bool {
        matches!(
            self,
            ArtifactKind::MdrPlacements | ArtifactKind::CombinedPlacement
        )
    }
}

// ------------------------------------------------------------------ trait

/// One unit of flow work: a named, parameterized transformation from
/// dependency artifacts (plus the shared input) to one output artifact.
///
/// `name()` and `params()` must together determine the computation given
/// the input and dependencies — they are composed into the node
/// fingerprint, so anything that changes the output must change one of
/// them (or an upstream fingerprint).
pub trait Stage: Send + Sync {
    /// Stable stage name (part of the fingerprint; also the default
    /// telemetry label).
    fn name(&self) -> &'static str;

    /// Stable parameter fingerprint (floats by bit pattern).
    fn params(&self) -> String;

    /// The artifact kind this stage produces.
    fn output_kind(&self) -> ArtifactKind;

    /// Runs the stage. `deps` holds the dependency artifacts in the
    /// order the node declared them.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flow failure.
    fn run(&self, input: &MultiModeInput, deps: &[Artifact]) -> Result<Artifact, FlowError>;
}

// ------------------------------------------------------------------- plan

/// Index of a node within its [`StagePlan`].
pub type NodeId = usize;

/// One node of a compiled plan: a stage, its dependencies, a display
/// label and the composed structural fingerprint.
pub struct PlanNode {
    stage: Box<dyn Stage>,
    deps: Vec<NodeId>,
    label: String,
    fingerprint: String,
}

impl PlanNode {
    /// The display label (telemetry only — never part of the
    /// fingerprint, so differently-labelled nodes can share caches).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The dependency node ids, in declaration order.
    #[must_use]
    pub fn deps(&self) -> &[NodeId] {
        &self.deps
    }

    /// The composed structural fingerprint: stage name + params + input
    /// fingerprint + dependency fingerprints, all length-prefixed.
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The stage this node runs.
    #[must_use]
    pub fn stage(&self) -> &dyn Stage {
        self.stage.as_ref()
    }

    /// The artifact kind this node produces.
    #[must_use]
    pub fn output_kind(&self) -> ArtifactKind {
        self.stage.output_kind()
    }
}

impl fmt::Debug for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanNode")
            .field("label", &self.label)
            .field("stage", &self.stage.name())
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

/// Appends `part` to `out` with a length prefix, so concatenated parts
/// can never alias across boundaries.
fn push_framed(out: &mut String, part: &str) {
    out.push_str(&part.len().to_string());
    out.push(':');
    out.push_str(part);
}

/// The input fingerprint: the canonical BLIF of every mode,
/// length-prefixed. The BLIF text captures the LUT width and the full
/// netlist, which (with the option fingerprints in stage params) is
/// everything the fabric and the flows derive from.
fn input_fingerprint(input: &MultiModeInput) -> String {
    let mut s = String::from("input-v1;");
    for circuit in input.circuits() {
        push_framed(&mut s, &blif::to_blif(circuit));
    }
    s
}

/// Assembles a [`StagePlan`] node by node. Dependencies must already be
/// in the builder, so plans are acyclic by construction.
#[derive(Default)]
pub struct PlanBuilder {
    nodes: Vec<(Box<dyn Stage>, Vec<NodeId>, String)>,
}

impl PlanBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id has not been added yet (which would
    /// make the plan cyclic or dangling).
    pub fn add(
        &mut self,
        stage: Box<dyn Stage>,
        deps: Vec<NodeId>,
        label: impl Into<String>,
    ) -> NodeId {
        let id = self.nodes.len();
        assert!(
            deps.iter().all(|&d| d < id),
            "plan dependencies must be added before their consumers"
        );
        self.nodes.push((stage, deps, label.into()));
        id
    }

    /// Seals the plan over `input`, with `root` as the demanded output
    /// node, computing every node's fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a node of this builder or the builder is
    /// empty.
    #[must_use]
    pub fn build(self, input: MultiModeInput, root: NodeId) -> StagePlan {
        assert!(root < self.nodes.len(), "plan root must be a node");
        let input_fp = input_fingerprint(&input);
        let mut nodes: Vec<PlanNode> = Vec::with_capacity(self.nodes.len());
        for (stage, deps, label) in self.nodes {
            let mut fp = String::from("stage-v1;");
            push_framed(&mut fp, stage.name());
            push_framed(&mut fp, &stage.params());
            push_framed(&mut fp, &input_fp);
            for &d in &deps {
                push_framed(&mut fp, &nodes[d].fingerprint);
            }
            nodes.push(PlanNode {
                stage,
                deps,
                label,
                fingerprint: fp,
            });
        }
        StagePlan { input, nodes, root }
    }
}

/// A compiled flow: a DAG of stages over one input, with a designated
/// root whose artifact is the flow's result.
pub struct StagePlan {
    input: MultiModeInput,
    nodes: Vec<PlanNode>,
    root: NodeId,
}

impl fmt::Debug for StagePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StagePlan")
            .field("nodes", &self.nodes)
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}

// ------------------------------------------------------------------ hooks

/// What a [`PlanHooks::lookup`] found for a node.
// One Lookup exists per node execution and is consumed immediately, so
// the Hit payload's size never accumulates anywhere.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Lookup {
    /// A cached artifact; the node (and anything only it demanded) is
    /// skipped.
    Hit(Artifact),
    /// The node is cacheable but absent; it will run and be offered to
    /// [`PlanHooks::store`].
    Miss,
    /// The hooks do not cache this node; it runs without a store offer
    /// being meaningful (store is still called — hooks may ignore it).
    Uncached,
}

/// Cache integration points of the executor. Lookups and stores happen
/// on the calling thread, outside the worker pool.
pub trait PlanHooks {
    /// Consults the cache for one node (keyed however the hooks like —
    /// typically by hashing [`PlanNode::fingerprint`]).
    fn lookup(&self, node: &PlanNode) -> Lookup;

    /// Offers a freshly computed artifact for storage.
    fn store(&self, node: &PlanNode, artifact: &Artifact);
}

/// Hooks that cache nothing: every node reports [`Lookup::Uncached`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl PlanHooks for NoHooks {
    fn lookup(&self, _node: &PlanNode) -> Lookup {
        Lookup::Uncached
    }

    fn store(&self, _node: &PlanNode, _artifact: &Artifact) {}
}

// -------------------------------------------------------------- telemetry

/// How one node was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Cacheable but absent — computed (and offered for storage).
    Miss,
    /// Not cached by the hooks — computed.
    Uncached,
}

impl CacheOutcome {
    /// Stable lower-case name (`hit` / `miss` / `uncached`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Uncached => "uncached",
        }
    }
}

/// Wall-clock and cache telemetry of one resolved node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// The node's display label.
    pub name: String,
    /// The artifact kind the node produces.
    pub kind: ArtifactKind,
    /// How the node was resolved.
    pub cache: CacheOutcome,
    /// Lookup time plus (for computed nodes) execution time.
    pub duration: Duration,
}

/// The outcome of executing a plan: the root artifact (or the first
/// failure in dependency-then-declaration order) plus per-node telemetry
/// for every node that was resolved, in node-id order.
#[derive(Debug)]
pub struct PlanRun {
    /// The root artifact, or the failure that stopped the plan.
    pub artifact: Result<Artifact, FlowError>,
    /// Telemetry for resolved nodes (cache hits, computed nodes, and
    /// the failing node itself), in node-id order.
    pub stages: Vec<StageTiming>,
}

// --------------------------------------------------------------- executor

impl StagePlan {
    /// The shared input.
    #[must_use]
    pub fn input(&self) -> &MultiModeInput {
        &self.input
    }

    /// The nodes, in id order.
    #[must_use]
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The root node id.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The root node's fingerprint — the identity of the whole plan
    /// (every upstream fingerprint composes into it).
    #[must_use]
    pub fn root_fingerprint(&self) -> &str {
        self.nodes[self.root].fingerprint()
    }

    /// Executes the plan: demand-driven cache resolution from the root,
    /// then bottom-up waves of ready nodes on the work-stealing pool.
    ///
    /// `intra_parallelism` bounds the workers per wave (`0` = one per
    /// ready node, `1` = strictly serial); stages are independently
    /// seeded, so the artifact is identical at any setting. On failure,
    /// the reported error is the first failing node in node-id order of
    /// the earliest failing wave — matching a serial bottom-up run.
    #[must_use]
    pub fn execute(&self, hooks: &dyn PlanHooks, intra_parallelism: usize) -> PlanRun {
        let n = self.nodes.len();
        let mut artifacts: Vec<Option<Artifact>> = (0..n).map(|_| None).collect();
        let mut outcome: Vec<Option<CacheOutcome>> = vec![None; n];
        let mut duration: Vec<Duration> = vec![Duration::ZERO; n];
        let mut need = vec![false; n];

        // Demand pass: a hit seals a node, so its dependencies are never
        // demanded (a warm root skips the entire plan).
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            if outcome[i].is_some() || need[i] {
                continue;
            }
            let t0 = Instant::now();
            let looked = hooks.lookup(&self.nodes[i]);
            duration[i] = t0.elapsed();
            match looked {
                // A hit of the wrong kind is a corrupt or aliased entry;
                // recompute rather than poison downstream stages.
                Lookup::Hit(a) if a.kind() == self.nodes[i].output_kind() => {
                    artifacts[i] = Some(a);
                    outcome[i] = Some(CacheOutcome::Hit);
                    continue;
                }
                Lookup::Hit(_) | Lookup::Miss => outcome[i] = Some(CacheOutcome::Miss),
                Lookup::Uncached => outcome[i] = Some(CacheOutcome::Uncached),
            }
            need[i] = true;
            stack.extend_from_slice(&self.nodes[i].deps);
        }

        // Bottom-up waves: every demanded node whose dependencies are
        // satisfied runs; the pool preserves node-id order within a
        // wave, so error priority matches a serial run. A failing wave
        // is still consumed whole — siblings that ran are timed (and,
        // before the first error, stored), exactly as the hand-wired
        // leg joins behaved.
        let failure = loop {
            let wave: Vec<NodeId> = (0..n)
                .filter(|&i| need[i] && self.nodes[i].deps.iter().all(|&d| artifacts[d].is_some()))
                .collect();
            if wave.is_empty() {
                break None;
            }
            let threads = match intra_parallelism {
                0 => wave.len().max(1),
                t => t,
            };
            let artifacts_ref = &artifacts;
            let results = pool::run_ordered(
                wave.clone(),
                threads,
                |_, i| {
                    let t0 = Instant::now();
                    let deps: Vec<Artifact> = self.nodes[i]
                        .deps
                        .iter()
                        .map(|&d| artifacts_ref[d].clone().expect("dependency resolved"))
                        .collect();
                    let out = self.nodes[i].stage.run(&self.input, &deps);
                    (out, t0.elapsed())
                },
                |_, _| {},
            );
            let mut first_err = None;
            for (&i, (out, spent)) in wave.iter().zip(results) {
                need[i] = false;
                duration[i] += spent;
                match out {
                    Ok(a) if a.kind() == self.nodes[i].output_kind() => {
                        if first_err.is_none() {
                            hooks.store(&self.nodes[i], &a);
                        }
                        artifacts[i] = Some(a);
                    }
                    Ok(_) if first_err.is_none() => {
                        first_err = Some(FlowError::Internal(format!(
                            "stage '{}' produced an artifact of the wrong kind",
                            self.nodes[i].label
                        )));
                    }
                    Ok(_) => {}
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            if first_err.is_some() {
                break first_err;
            }
        };

        let stages = (0..n)
            .filter(|&i| outcome[i].is_some() && (artifacts[i].is_some() || !need[i]))
            .map(|i| StageTiming {
                name: self.nodes[i].label.clone(),
                kind: self.nodes[i].output_kind(),
                cache: outcome[i].expect("resolved outcome"),
                duration: duration[i],
            })
            .collect();

        let artifact = match failure {
            Some(e) => Err(e),
            None => match artifacts[self.root].take() {
                Some(a) => Ok(a),
                // Unreachable for plans built by `PlanBuilder` (the DAG
                // is acyclic by construction), but a long-running service
                // must degrade to one failed job, never a panic.
                None => Err(FlowError::Internal(
                    "stage plan did not resolve its root".into(),
                )),
            },
        };
        PlanRun { artifact, stages }
    }
}

// ------------------------------------------------------------ flow stages

/// The placement parameter fingerprint: the effective placer options
/// plus the connection-block flexibilities (they shape the fabric the
/// annealer targets). Router options and width policy are deliberately
/// excluded — plans differing only in routing parameters share their
/// annealing nodes.
fn place_params(placer: &PlacerOptions, options: &FlowOptions) -> String {
    format!(
        "{};fci={:016x};fco={:016x}",
        placer.fingerprint(),
        options.fc_in.to_bits(),
        options.fc_out.to_bits(),
    )
}

/// Per-mode MDR annealing (always wire-length cost, one derived seed per
/// mode).
struct PlaceMdr {
    options: FlowOptions,
}

impl Stage for PlaceMdr {
    fn name(&self) -> &'static str {
        "place-mdr"
    }

    fn params(&self) -> String {
        // `MdrFlow::place` always anneals with the wire-length cost, so
        // normalize the cost out of the fingerprint: MDR nodes differing
        // only in an (ignored) combined-placement cost share work.
        let placer = PlacerOptions {
            cost: CostKind::WireLength,
            ..self.options.placer
        };
        place_params(&placer, &self.options)
    }

    fn output_kind(&self) -> ArtifactKind {
        ArtifactKind::MdrPlacements
    }

    fn run(&self, input: &MultiModeInput, _deps: &[Artifact]) -> Result<Artifact, FlowError> {
        let placements = MdrFlow::new(self.options).place(input)?;
        Ok(Artifact::MdrPlacements(Arc::new(placements)))
    }
}

/// Combined placement of all modes under one cost kind.
struct PlaceDcs {
    options: FlowOptions,
    cost: CostKind,
}

impl Stage for PlaceDcs {
    fn name(&self) -> &'static str {
        "place-dcs"
    }

    fn params(&self) -> String {
        let placer = PlacerOptions {
            cost: self.cost,
            ..self.options.placer
        };
        place_params(&placer, &self.options)
    }

    fn output_kind(&self) -> ArtifactKind {
        ArtifactKind::CombinedPlacement
    }

    fn run(&self, input: &MultiModeInput, _deps: &[Artifact]) -> Result<Artifact, FlowError> {
        let placement = DcsFlow::new(self.options)
            .with_cost(self.cost)
            .place(input)?;
        Ok(Artifact::CombinedPlacement(Arc::new(placement)))
    }
}

fn dep_combined(deps: &[Artifact], index: usize) -> Result<&MultiPlacement, FlowError> {
    match deps.get(index) {
        Some(Artifact::CombinedPlacement(p)) => Ok(p),
        _ => Err(FlowError::Internal(format!(
            "stage dependency {index} is not a combined placement"
        ))),
    }
}

fn dep_mdr(deps: &[Artifact], index: usize) -> Result<&Arc<Vec<Placement>>, FlowError> {
    match deps.get(index) {
        Some(Artifact::MdrPlacements(p)) => Ok(p),
        _ => Err(FlowError::Internal(format!(
            "stage dependency {index} is not a set of MDR placements"
        ))),
    }
}

/// DCS routing, tuning and summary extraction on top of a combined
/// placement (routed STA only for the timing cost, so default summaries
/// stay byte-identical).
struct DcsSummarize {
    options: FlowOptions,
    cost: CostKind,
}

impl Stage for DcsSummarize {
    fn name(&self) -> &'static str {
        "dcs-summary"
    }

    fn params(&self) -> String {
        // The flow cost may differ from `options.placer.cost` (it is an
        // independent selector), so it joins the fingerprint explicitly.
        format!(
            "{};cost={}",
            self.options.fingerprint(),
            self.cost.fingerprint()
        )
    }

    fn output_kind(&self) -> ArtifactKind {
        ArtifactKind::Dcs
    }

    fn run(&self, input: &MultiModeInput, deps: &[Artifact]) -> Result<Artifact, FlowError> {
        let placement = dep_combined(deps, 0)?;
        let flow = DcsFlow::new(self.options).with_cost(self.cost);
        let r = flow.run_with_placement(input, placement.clone())?;
        let modes = input.mode_count();
        let critical_paths = if matches!(self.cost, CostKind::Timing { .. }) {
            Some(r.critical_paths(input.circuits())?)
        } else {
            None
        };
        Ok(Artifact::Dcs(DcsSummary {
            grid: r.arch.grid,
            channel_width: r.arch.channel_width,
            modes,
            param_bits: r.parameterized_routing_bits(),
            static_on_bits: r.param.static_on_bits(),
            dcs_cost: r.dcs_cost(),
            mdr_cost: r.mdr_cost(),
            wires: (0..modes).map(|m| r.wires_in_mode(m)).collect(),
            critical_paths,
            tunable: r.tunable.stats(),
        }))
    }
}

/// MDR routing and summary extraction on top of per-mode placements.
struct MdrSummarize {
    options: FlowOptions,
}

impl Stage for MdrSummarize {
    fn name(&self) -> &'static str {
        "mdr-summary"
    }

    fn params(&self) -> String {
        self.options.fingerprint()
    }

    fn output_kind(&self) -> ArtifactKind {
        ArtifactKind::Mdr
    }

    fn run(&self, input: &MultiModeInput, deps: &[Artifact]) -> Result<Artifact, FlowError> {
        let placements = dep_mdr(deps, 0)?;
        let r =
            MdrFlow::new(self.options).run_with_placements(input, placements.as_ref().clone())?;
        let modes = input.mode_count();
        Ok(Artifact::Mdr(MdrSummary {
            grid: r.arch.grid,
            channel_width: r.arch.channel_width,
            modes,
            mdr_cost: r.mdr_cost(),
            avg_diff_cost: r.average_diff_cost(),
            wires: (0..modes).map(|m| r.wires_in_mode(m)).collect(),
        }))
    }
}

/// The combined-comparison join: width resolution, routing and
/// configuration extraction of all three legs on their own fabrics.
struct Combine {
    options: FlowOptions,
}

impl Stage for Combine {
    fn name(&self) -> &'static str {
        "combine"
    }

    fn params(&self) -> String {
        self.options.fingerprint()
    }

    fn output_kind(&self) -> ArtifactKind {
        ArtifactKind::Combined
    }

    fn run(&self, input: &MultiModeInput, deps: &[Artifact]) -> Result<Artifact, FlowError> {
        let placements = CombinedPlacements {
            mdr: dep_mdr(deps, 0)?.as_ref().clone(),
            edge: dep_combined(deps, 1)?.clone(),
            wirelength: dep_combined(deps, 2)?.clone(),
        };
        let metrics = run_combined_with_placements(input, &self.options, "", &placements)?;
        Ok(Artifact::Combined(metrics))
    }
}

// ------------------------------------------------------- plan constructors

/// Compiles the DCS flow: one combined-placement node feeding one
/// route-and-summarize node.
#[must_use]
pub fn dcs_plan(input: MultiModeInput, options: FlowOptions, cost: CostKind) -> StagePlan {
    let mut b = PlanBuilder::new();
    let place = b.add(Box::new(PlaceDcs { options, cost }), vec![], "place-dcs");
    let root = b.add(
        Box::new(DcsSummarize { options, cost }),
        vec![place],
        "dcs-summary",
    );
    b.build(input, root)
}

/// Compiles the MDR baseline: one per-mode-annealing node feeding one
/// route-and-summarize node.
#[must_use]
pub fn mdr_plan(input: MultiModeInput, options: FlowOptions) -> StagePlan {
    let mut b = PlanBuilder::new();
    let place = b.add(Box::new(PlaceMdr { options }), vec![], "place-mdr");
    let root = b.add(
        Box::new(MdrSummarize { options }),
        vec![place],
        "mdr-summary",
    );
    b.build(input, root)
}

/// Compiles the full combined comparison: the three annealing legs fan
/// out (fingerprinting identically to the plain plans' placement nodes,
/// so caches share them bidirectionally) and the combine stage joins
/// them.
#[must_use]
pub fn combined_plan(input: MultiModeInput, options: FlowOptions) -> StagePlan {
    let mut b = PlanBuilder::new();
    let mdr = b.add(Box::new(PlaceMdr { options }), vec![], "place-mdr");
    let edge = b.add(
        Box::new(PlaceDcs {
            options,
            cost: CostKind::EdgeMatching,
        }),
        vec![],
        "place-dcs-edge",
    );
    let wl = b.add(
        Box::new(PlaceDcs {
            options,
            cost: CostKind::WireLength,
        }),
        vec![],
        "place-dcs-wl",
    );
    let root = b.add(
        Box::new(Combine { options }),
        vec![mdr, edge, wl],
        "combine",
    );
    b.build(input, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::{LutCircuit, TruthTable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Mutex;

    fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = LutCircuit::new(name, 4);
        let mut drivers: Vec<mm_netlist::BlockId> = (0..n_inputs)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        for j in 0..n_luts {
            let fanin = rng.gen_range(2..=4.min(drivers.len()));
            let mut ins = Vec::new();
            while ins.len() < fanin {
                let d = drivers[rng.gen_range(0..drivers.len())];
                if !ins.contains(&d) {
                    ins.push(d);
                }
            }
            let tt = TruthTable::from_bits(ins.len(), rng.gen());
            let id = c
                .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
                .unwrap();
            drivers.push(id);
        }
        for t in 0..3 {
            let d = drivers[drivers.len() - 1 - t];
            c.add_output(format!("o{t}"), d).unwrap();
        }
        c
    }

    fn small_input() -> MultiModeInput {
        MultiModeInput::new(vec![
            random_circuit("m0", 5, 12, 501),
            random_circuit("m1", 5, 13, 502),
        ])
        .unwrap()
    }

    fn quick() -> FlowOptions {
        let mut o = FlowOptions::default().with_fixed_width(12);
        o.placer.inner_num = 1.0;
        o.router.max_iterations = 30;
        o
    }

    #[test]
    fn combined_legs_share_fingerprints_with_plain_plans() {
        let options = quick();
        let combined = combined_plan(small_input(), options);
        let dcs_wl = dcs_plan(small_input(), options, CostKind::WireLength);
        let dcs_edge = dcs_plan(small_input(), options, CostKind::EdgeMatching);
        let mdr = mdr_plan(small_input(), options);
        let fp = |plan: &StagePlan, label: &str| {
            plan.nodes()
                .iter()
                .find(|n| n.label() == label)
                .unwrap()
                .fingerprint()
                .to_string()
        };
        // Labels differ, fingerprints agree: the pair↔plain sharing rule.
        assert_eq!(fp(&combined, "place-mdr"), fp(&mdr, "place-mdr"));
        assert_eq!(fp(&combined, "place-dcs-wl"), fp(&dcs_wl, "place-dcs"));
        assert_eq!(fp(&combined, "place-dcs-edge"), fp(&dcs_edge, "place-dcs"));
        assert_ne!(
            fp(&combined, "place-dcs-wl"),
            fp(&combined, "place-dcs-edge")
        );
        // Roots separate the flavors.
        assert_ne!(combined.root_fingerprint(), dcs_wl.root_fingerprint());
        assert_ne!(mdr.root_fingerprint(), dcs_wl.root_fingerprint());
    }

    #[test]
    fn fingerprints_react_to_params_and_input() {
        let options = quick();
        let base = dcs_plan(small_input(), options, CostKind::WireLength);
        let mut routed = options;
        routed.router.max_iterations = 29;
        let rerouted = dcs_plan(small_input(), routed, CostKind::WireLength);
        // Placement nodes ignore router options; the summary does not.
        assert_eq!(
            base.nodes()[0].fingerprint(),
            rerouted.nodes()[0].fingerprint()
        );
        assert_ne!(base.root_fingerprint(), rerouted.root_fingerprint());

        let reseeded = dcs_plan(small_input(), options.with_seed(7), CostKind::WireLength);
        assert_ne!(
            base.nodes()[0].fingerprint(),
            reseeded.nodes()[0].fingerprint()
        );

        let other = MultiModeInput::new(vec![
            random_circuit("m0", 5, 12, 601),
            random_circuit("m1", 5, 13, 602),
        ])
        .unwrap();
        let moved = dcs_plan(other, options, CostKind::WireLength);
        assert_ne!(base.root_fingerprint(), moved.root_fingerprint());
    }

    #[test]
    fn dcs_plan_matches_direct_flow() {
        let options = quick();
        let run = dcs_plan(small_input(), options, CostKind::WireLength).execute(&NoHooks, 1);
        let Ok(Artifact::Dcs(summary)) = run.artifact else {
            panic!("expected a DCS summary");
        };
        let direct = DcsFlow::new(options).run(&small_input()).unwrap();
        assert_eq!(summary.channel_width, direct.arch.channel_width);
        assert_eq!(summary.param_bits, direct.parameterized_routing_bits());
        assert_eq!(summary.dcs_cost, direct.dcs_cost());
        assert_eq!(summary.critical_paths, None);
        assert_eq!(run.stages.len(), 2);
        assert!(run.stages.iter().all(|s| s.cache == CacheOutcome::Uncached));
    }

    /// Hooks that serve one pre-seeded node and log every store.
    struct SeededHooks {
        hit_label: String,
        artifact: Artifact,
        stored: Mutex<Vec<String>>,
    }

    impl PlanHooks for SeededHooks {
        fn lookup(&self, node: &PlanNode) -> Lookup {
            if node.label() == self.hit_label {
                Lookup::Hit(self.artifact.clone())
            } else {
                Lookup::Miss
            }
        }

        fn store(&self, node: &PlanNode, _artifact: &Artifact) {
            self.stored.lock().unwrap().push(node.label().to_string());
        }
    }

    #[test]
    fn root_hit_skips_every_dependency() {
        let options = quick();
        let plan = mdr_plan(small_input(), options);
        let direct = plan.execute(&NoHooks, 1);
        let Ok(root) = direct.artifact else {
            panic!("baseline run failed");
        };
        let hooks = SeededHooks {
            hit_label: "mdr-summary".into(),
            artifact: root,
            stored: Mutex::new(Vec::new()),
        };
        let run = plan.execute(&hooks, 1);
        assert!(matches!(run.artifact, Ok(Artifact::Mdr(_))));
        // Only the root was resolved; the placement was never demanded.
        assert_eq!(run.stages.len(), 1);
        assert_eq!(run.stages[0].cache, CacheOutcome::Hit);
        assert!(hooks.stored.lock().unwrap().is_empty());
    }

    #[test]
    fn placement_hit_skips_annealing_only() {
        let options = quick();
        let plan = dcs_plan(small_input(), options, CostKind::WireLength);
        let placement = DcsFlow::new(options).place(&small_input()).unwrap();
        let hooks = SeededHooks {
            hit_label: "place-dcs".into(),
            artifact: Artifact::CombinedPlacement(Arc::new(placement)),
            stored: Mutex::new(Vec::new()),
        };
        let run = plan.execute(&hooks, 1);
        let Ok(Artifact::Dcs(summary)) = run.artifact else {
            panic!("expected a DCS summary");
        };
        let direct = DcsFlow::new(options).run(&small_input()).unwrap();
        assert_eq!(summary.param_bits, direct.parameterized_routing_bits());
        assert_eq!(run.stages.len(), 2);
        assert_eq!(run.stages[0].cache, CacheOutcome::Hit);
        assert_eq!(run.stages[1].cache, CacheOutcome::Miss);
        // Only the summary was computed and offered for storage.
        assert_eq!(
            *hooks.stored.lock().unwrap(),
            vec!["dcs-summary".to_string()]
        );
    }

    #[test]
    fn wrong_kind_hit_is_recomputed_not_propagated() {
        let options = quick();
        let plan = mdr_plan(small_input(), options);
        let bogus = Artifact::CombinedPlacement(Arc::new(MultiPlacement { modes: Vec::new() }));
        let hooks = SeededHooks {
            hit_label: "place-mdr".into(),
            artifact: bogus,
            stored: Mutex::new(Vec::new()),
        };
        let run = plan.execute(&hooks, 1);
        assert!(run.artifact.is_ok(), "wrong-kind hit must fall back");
        assert!(run.stages.iter().all(|s| s.cache != CacheOutcome::Hit));
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let options = quick();
        let serial = combined_plan(small_input(), options).execute(&NoHooks, 1);
        let parallel = combined_plan(small_input(), options).execute(&NoHooks, 0);
        let (Ok(Artifact::Combined(a)), Ok(Artifact::Combined(b))) =
            (serial.artifact, parallel.artifact)
        else {
            panic!("both runs must succeed");
        };
        assert_eq!(a, b, "wave parallelism must not change the artifact");
    }

    #[test]
    fn failing_stage_reports_first_error_and_partial_telemetry() {
        let mut options = quick();
        options.max_width = 1;
        options.router.max_iterations = 2;
        let run = dcs_plan(small_input(), options, CostKind::WireLength).execute(&NoHooks, 1);
        let Err(e) = run.artifact else {
            panic!("width 1 must be unroutable");
        };
        assert!(matches!(e, FlowError::Unroutable { .. }), "{e}");
        // The placement succeeded, the summary failed — both resolved.
        assert_eq!(run.stages.len(), 2);
    }

    #[test]
    fn builder_rejects_dangling_deps() {
        let caught = std::panic::catch_unwind(|| {
            let mut b = PlanBuilder::new();
            b.add(Box::new(PlaceMdr { options: quick() }), vec![3], "dangling");
        });
        assert!(caught.is_err());
    }
}
