//! Small statistics and table-formatting helpers shared by the experiment
//! drivers and the benchmark binaries.

use std::fmt;

/// Min/mean/max summary of a sample, as used by the paper's error bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Smallest sample.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl Stats {
    /// Summarises a sample (empty samples give zeroed stats).
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                min: 0.0,
                mean: 0.0,
                max: 0.0,
                count: 0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        Self {
            min,
            mean: sum / samples.len() as f64,
            max,
            count: samples.len(),
        }
    }

    /// Summarises integer samples.
    #[must_use]
    pub fn of_usize(samples: &[usize]) -> Self {
        let v: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        Self::of(&v)
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.2} / mean {:.2} / max {:.2} (n={})",
            self.min, self.mean, self.max, self.count
        )
    }
}

/// Renders a fixed-width text table: a header row plus data rows.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_samples() {
        let s = Stats::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.count, 3);
        assert_eq!(s.to_string(), "min 2.00 / mean 4.00 / max 6.00 (n=3)");
    }

    #[test]
    fn stats_of_empty() {
        let s = Stats::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn stats_of_usize_converts() {
        let s = Stats::of_usize(&[1, 2, 3]);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "luts"],
            &[
                vec!["regexp0".into(), "224".into()],
                vec!["fir".into(), "302".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("224"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
