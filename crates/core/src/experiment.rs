//! The paper's experiment driver (§IV): for each multi-mode circuit, run
//! MDR and both DCS variants on the *same* fabric and collect the metrics
//! behind Table I and Figures 5–7.
//!
//! The comparison is defined for **any mode count** N ≥ 1, not just the
//! paper's pairs: every stage iterates the modes of the input, the MDR
//! leg anneals and routes one single-mode implementation per mode, and
//! the diff cost averages over all ordered mode pairs. The historical
//! `*_pair` names survive as thin wrappers around the N-ary entry points.
//!
//! Fabric sizing follows the paper per implementation: the array is sized
//! for the biggest mode (+20% area, shared by all flows — the
//! reconfigurable region is one physical resource), while each flow's
//! channel width is its own minimum +20% (MDR's width is the maximum over
//! its modes). Reconfiguration costs are therefore measured on the fabric
//! each tool flow would actually provision, exactly as a per-flow VPR run
//! would report them.
//!
//! The comparison is staged so the batch engine can cache and share work:
//!
//! * [`place_combined_n`] — the N+2 annealing stages (one per-mode MDR
//!   placement per mode, plus the edge-matching and wire-length combined
//!   placements), run concurrently on the work-stealing pool; each stage
//!   is content-addressed identically to the plain `mdr`/`dcs` jobs, so
//!   a combined job shares placements with them.
//! * [`run_combined_with_placements`] — width resolution, routing and
//!   configuration extraction; the MDR leg and the two DCS variants run
//!   concurrently.
//!
//! [`run_combined_n`] compiles the two stages to the
//! [`crate::stage::combined_plan`] DAG and executes it uncached; with
//! [`FlowOptions::intra_parallelism`] `== 1` everything runs serially and
//! the results are byte-identical. [`run_pair`] (N = 2 callers) delegates
//! to the same code, so its output is byte-identical by construction —
//! and pinned by the parity property tests.

use crate::flow::{intra_threads, resolve_width};
use crate::{pool, FlowError, FlowOptions, MultiModeInput, TunableCircuit};
use mm_arch::{Architecture, RoutingGraph};
use mm_bitstream::{speedup, Config, ConfigModel, ParamConfig, RewriteCost};
use mm_boolexpr::ModeSet;
use mm_netlist::LutCircuit;
use mm_place::{place_combined, place_single, CostKind, MultiPlacement, Placement, PlacerOptions};
use mm_route::{nets_for_circuit, verify_routing, Router, RouterOptions};

/// All per-problem measurements used by the figures, for any mode count.
///
/// The `*_pair` flows produce the same struct (they are N = 2 instances
/// of the combined comparison); the historical [`PairMetrics`] name is an
/// alias.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedMetrics {
    /// Human-readable id, e.g. `regexp0+regexp3`.
    pub name: String,
    /// Array side length (shared region).
    pub grid: usize,
    /// MDR channel width (max over modes, +20%).
    pub width_mdr: usize,
    /// Channel width of the edge-matched tunable circuit (+20%).
    pub width_edge: usize,
    /// Channel width of the wire-length tunable circuit (+20%).
    pub width_wirelength: usize,
    /// Reconfiguration cost of MDR (full region).
    pub mdr: RewriteCost,
    /// Diff-based rewrite (all LUT bits + differing routing cells),
    /// averaged over ordered mode pairs.
    pub diff: RewriteCost,
    /// DCS with edge-matching combined placement.
    pub dcs_edge: RewriteCost,
    /// DCS with wire-length combined placement.
    pub dcs_wirelength: RewriteCost,
    /// Mean wires per active mode under MDR.
    pub wires_mdr: f64,
    /// Mean wires per active mode under DCS edge matching.
    pub wires_edge: f64,
    /// Mean wires per active mode under DCS wire-length.
    pub wires_wirelength: f64,
    /// Tunable-circuit statistics (wire-length variant).
    pub tunable_stats: crate::TunableStats,
    /// Logic blocks of each mode (area bookkeeping).
    pub mode_luts: Vec<usize>,
}

/// Historical name of [`CombinedMetrics`], kept for API stability.
pub type PairMetrics = CombinedMetrics;

impl CombinedMetrics {
    /// Fig. 5: reconfiguration speed-up of DCS (edge matching) over MDR.
    #[must_use]
    pub fn speedup_edge(&self) -> f64 {
        speedup(&self.mdr, &self.dcs_edge)
    }

    /// Fig. 5: reconfiguration speed-up of DCS (wire length) over MDR.
    #[must_use]
    pub fn speedup_wirelength(&self) -> f64 {
        speedup(&self.mdr, &self.dcs_wirelength)
    }

    /// Fig. 7: per-mode wire usage of DCS edge matching relative to MDR.
    #[must_use]
    pub fn wire_ratio_edge(&self) -> f64 {
        self.wires_edge / self.wires_mdr
    }

    /// Fig. 7: per-mode wire usage of DCS wire-length relative to MDR.
    #[must_use]
    pub fn wire_ratio_wirelength(&self) -> f64 {
        self.wires_wirelength / self.wires_mdr
    }

    /// §IV-C area: the multi-mode region (largest mode, +20%) relative to
    /// implementing all modes statically side by side.
    #[must_use]
    pub fn area_vs_static(&self) -> f64 {
        let max = *self.mode_luts.iter().max().expect("at least one mode") as f64;
        let sum: usize = self.mode_luts.iter().sum();
        max / sum as f64
    }
}

/// The annealing outputs of the combined comparison — one per flow leg,
/// for any mode count.
///
/// These are exactly the placements a plain `mdr` job and the two `dcs`
/// cost variants would produce, which is what lets the batch engine share
/// the cached stages between combined jobs and plain jobs.
#[derive(Debug, Clone)]
pub struct CombinedPlacements {
    /// Per-mode MDR placements (wire-length annealing per mode).
    pub mdr: Vec<Placement>,
    /// The edge-matching combined placement.
    pub edge: MultiPlacement,
    /// The wire-length combined placement.
    pub wirelength: MultiPlacement,
}

/// Historical name of [`CombinedPlacements`], kept for API stability.
pub type PairPlacements = CombinedPlacements;

/// One annealing task of [`place_combined_n`].
enum PlaceTask {
    MdrMode(usize),
    Edge,
    WireLength,
}

enum PlaceOutput {
    Single(Placement),
    Multi(MultiPlacement),
}

/// Stage 1 of the combined comparison: all N+2 annealing legs (one MDR
/// placement per mode, plus the edge-matching and wire-length combined
/// placements), run concurrently on the work-stealing pool (serial when
/// [`FlowOptions::intra_parallelism`] is 1).
///
/// # Errors
///
/// Fails if any leg cannot be placed.
pub fn place_combined_n(
    input: &MultiModeInput,
    options: &FlowOptions,
) -> Result<CombinedPlacements, FlowError> {
    let base = options.base_arch(input);
    let m = input.mode_count();
    let mut tasks: Vec<PlaceTask> = (0..m).map(PlaceTask::MdrMode).collect();
    tasks.push(PlaceTask::Edge);
    tasks.push(PlaceTask::WireLength);
    let threads = intra_threads(options, tasks.len());

    let results = pool::run_ordered(
        tasks,
        threads,
        |_, task| -> Result<PlaceOutput, FlowError> {
            match task {
                PlaceTask::MdrMode(mode) => {
                    let opts = PlacerOptions {
                        cost: CostKind::WireLength,
                        seed: options.placer.seed
                            ^ (mode as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        ..options.placer
                    };
                    let (p, _) = place_single(&input.circuits()[mode], &base, &opts)?;
                    Ok(PlaceOutput::Single(p))
                }
                PlaceTask::Edge => {
                    let placer = PlacerOptions {
                        cost: CostKind::EdgeMatching,
                        ..options.placer
                    };
                    let (p, _) = place_combined(input.circuits(), &base, &placer)?;
                    Ok(PlaceOutput::Multi(p))
                }
                PlaceTask::WireLength => {
                    let placer = PlacerOptions {
                        cost: CostKind::WireLength,
                        ..options.placer
                    };
                    let (p, _) = place_combined(input.circuits(), &base, &placer)?;
                    Ok(PlaceOutput::Multi(p))
                }
            }
        },
        |_, _| {},
    );

    let mut outputs = results.into_iter();
    let mut mdr = Vec::with_capacity(m);
    for _ in 0..m {
        match outputs.next().expect("one output per task")? {
            PlaceOutput::Single(p) => mdr.push(p),
            PlaceOutput::Multi(_) => unreachable!("MDR task yields a single placement"),
        }
    }
    let edge = match outputs.next().expect("edge output")? {
        PlaceOutput::Multi(p) => p,
        PlaceOutput::Single(_) => unreachable!("edge task yields a combined placement"),
    };
    let wirelength = match outputs.next().expect("wirelength output")? {
        PlaceOutput::Multi(p) => p,
        PlaceOutput::Single(_) => unreachable!("wl task yields a combined placement"),
    };
    Ok(CombinedPlacements {
        mdr,
        edge,
        wirelength,
    })
}

/// Thin N = 2-era wrapper around [`place_combined_n`], kept for API
/// stability (it has always accepted any mode count).
///
/// # Errors
///
/// Fails if any leg cannot be placed.
pub fn place_pair(
    input: &MultiModeInput,
    options: &FlowOptions,
) -> Result<CombinedPlacements, FlowError> {
    place_combined_n(input, options)
}

/// What one routed flow leg reports back.
enum LegOutput {
    Mdr {
        model: ConfigModel,
        configs: Vec<Config>,
        wires: Vec<usize>,
        width: usize,
    },
    Dcs {
        cost: RewriteCost,
        wires: Vec<usize>,
        width: usize,
    },
}

enum Leg<'p> {
    Mdr(&'p [Placement]),
    Dcs {
        tunable: &'p TunableCircuit,
        label: &'static str,
    },
}

/// Routes the MDR leg: shared width (max over modes, +20%), then every
/// mode at that width, growing jointly if negotiation stalls.
fn run_mdr_leg(
    input: &MultiModeInput,
    options: &FlowOptions,
    base: &Architecture,
    placements: &[Placement],
) -> Result<LegOutput, FlowError> {
    let single_router = RouterOptions {
        mode_count: 1,
        ..options.router
    };
    let mut width = {
        let mut w = 0usize;
        for (m, circuit) in input.circuits().iter().enumerate() {
            let placement = &placements[m];
            let wm = resolve_width(
                base,
                options,
                &single_router,
                &format!("MDR mode {m}"),
                |rrg| nets_for_circuit(circuit, rrg, ModeSet::single(0), |b| placement.site_of(b)),
            )?;
            w = w.max(wm);
        }
        w
    };
    loop {
        let arch = base.with_channel_width(width);
        let rrg = RoutingGraph::build(&arch);
        // One router serves every mode: `route` resets congestion state
        // on entry and HPWL-seeds each net's bounding box from the
        // placement geometry the nets carry.
        let mut router = Router::new(&rrg, single_router);
        let mut configs = Vec::with_capacity(input.mode_count());
        let mut wires = Vec::with_capacity(input.mode_count());
        let mut ok = true;
        for circuit in input.circuits() {
            let placement = &placements[configs.len()];
            let nets =
                nets_for_circuit(circuit, &rrg, ModeSet::single(0), |b| placement.site_of(b));
            let routing = router.route(&nets);
            if !routing.success {
                ok = false;
                break;
            }
            verify_routing(&rrg, &nets, &routing, 1).map_err(FlowError::Internal)?;
            wires.push(routing.total_wires(&rrg));
            configs.push(Config::from_routing(&routing));
        }
        if ok {
            return Ok(LegOutput::Mdr {
                model: ConfigModel::new(&arch, &rrg),
                configs,
                wires,
                width,
            });
        }
        if width >= options.max_width {
            return Err(FlowError::Unroutable {
                max_width: options.max_width,
                context: "MDR at relaxed width".into(),
            });
        }
        width = (width + width.div_ceil(8)).min(options.max_width);
    }
}

/// Routes one DCS leg: width resolution plus mode-aware routing of the
/// tunable circuit on its own fabric.
fn run_dcs_leg(
    input: &MultiModeInput,
    options: &FlowOptions,
    base: &Architecture,
    tunable: &TunableCircuit,
    label: &str,
) -> Result<LegOutput, FlowError> {
    let multi_router = RouterOptions {
        mode_count: input.mode_count(),
        ..options.router
    };
    let width = resolve_width(
        base,
        options,
        &multi_router,
        &format!("tunable ({label})"),
        |rrg| tunable.route_nets(rrg),
    )?;
    let (arch, rrg, nets, routing) = crate::flow::route_with_growth(
        base,
        width,
        options.max_width,
        &multi_router,
        &format!("tunable circuit ({label}) at relaxed width"),
        None,
        |rrg| tunable.route_nets(rrg),
    )?;
    let model = ConfigModel::new(&arch, &rrg);
    verify_routing(&rrg, &nets, &routing, input.mode_count()).map_err(FlowError::Internal)?;
    let wires = (0..input.mode_count())
        .map(|m| routing.wires_in_mode(&rrg, m))
        .collect();
    let param = ParamConfig::from_routing(&routing, input.space());
    Ok(LegOutput::Dcs {
        cost: model.dcs_cost(&param),
        wires,
        width: arch.channel_width,
    })
}

/// Stage 2 of the combined comparison: width resolution, routing and
/// configuration extraction on top of existing placements. The MDR leg
/// and the two DCS variants run concurrently (serially with
/// [`FlowOptions::intra_parallelism`] `== 1`; results are identical
/// either way).
///
/// # Errors
///
/// Fails if the placements do not fit the input or a leg cannot route.
pub fn run_combined_with_placements(
    input: &MultiModeInput,
    options: &FlowOptions,
    name: impl Into<String>,
    placements: &CombinedPlacements,
) -> Result<CombinedMetrics, FlowError> {
    let base = options.base_arch(input);

    // Guard against stale/poisoned placements (e.g. a corrupted cache):
    // every leg's placement must fit this input on this fabric.
    if placements.mdr.len() != input.mode_count() {
        return Err(FlowError::Input(format!(
            "{} MDR placements for {} modes",
            placements.mdr.len(),
            input.mode_count()
        )));
    }
    let mdr_wrapped = MultiPlacement {
        modes: placements.mdr.clone(),
    };
    mm_place::verify_placement(input.circuits(), &base, &mdr_wrapped).map_err(FlowError::Input)?;
    mm_place::verify_placement(input.circuits(), &base, &placements.edge)
        .map_err(FlowError::Input)?;
    mm_place::verify_placement(input.circuits(), &base, &placements.wirelength)
        .map_err(FlowError::Input)?;

    let edge_tunable = TunableCircuit::from_placement(input.circuits(), &placements.edge, &base)?;
    let wl_tunable =
        TunableCircuit::from_placement(input.circuits(), &placements.wirelength, &base)?;
    edge_tunable
        .verify_projection(input.circuits(), &placements.edge)
        .map_err(FlowError::Internal)?;
    wl_tunable
        .verify_projection(input.circuits(), &placements.wirelength)
        .map_err(FlowError::Internal)?;

    // ---- the three flow legs, each on its own fabric ---------------------
    let legs = vec![
        Leg::Mdr(&placements.mdr),
        Leg::Dcs {
            tunable: &edge_tunable,
            label: "edge",
        },
        Leg::Dcs {
            tunable: &wl_tunable,
            label: "wl",
        },
    ];
    let threads = intra_threads(options, legs.len());
    let outputs = pool::run_ordered(
        legs,
        threads,
        |_, leg| match leg {
            Leg::Mdr(placements) => run_mdr_leg(input, options, &base, placements),
            Leg::Dcs { tunable, label } => run_dcs_leg(input, options, &base, tunable, label),
        },
        |_, _| {},
    );
    let mut outputs = outputs.into_iter();
    let (mdr_model, mdr_configs, mdr_wires, width_mdr) = match outputs.next().expect("mdr leg")? {
        LegOutput::Mdr {
            model,
            configs,
            wires,
            width,
        } => (model, configs, wires, width),
        LegOutput::Dcs { .. } => unreachable!("leg order is fixed"),
    };
    let (edge_cost, edge_wires, width_edge) = match outputs.next().expect("edge leg")? {
        LegOutput::Dcs { cost, wires, width } => (cost, wires, width),
        LegOutput::Mdr { .. } => unreachable!("leg order is fixed"),
    };
    let (wl_cost, wl_wires, width_wl) = match outputs.next().expect("wl leg")? {
        LegOutput::Dcs { cost, wires, width } => (cost, wires, width),
        LegOutput::Mdr { .. } => unreachable!("leg order is fixed"),
    };

    // ---- metrics ---------------------------------------------------------
    let mean = |w: &[usize]| -> f64 { w.iter().sum::<usize>() as f64 / w.len().max(1) as f64 };
    let diff = {
        let m = input.mode_count();
        let mut total = 0usize;
        let mut pairs = 0usize;
        for a in 0..m {
            for b in 0..m {
                if a != b {
                    total += mdr_model
                        .diff_cost(&mdr_configs[a], &mdr_configs[b])
                        .routing_bits;
                    pairs += 1;
                }
            }
        }
        RewriteCost {
            lut_bits: mdr_model.lut_bits,
            routing_bits: total.checked_div(pairs).unwrap_or_default(),
        }
    };

    Ok(CombinedMetrics {
        name: name.into(),
        grid: base.grid,
        width_mdr,
        width_edge,
        width_wirelength: width_wl,
        mdr: mdr_model.mdr_cost(),
        diff,
        dcs_edge: edge_cost,
        dcs_wirelength: wl_cost,
        wires_mdr: mean(&mdr_wires),
        wires_edge: mean(&edge_wires),
        wires_wirelength: mean(&wl_wires),
        tunable_stats: wl_tunable.stats(),
        mode_luts: input.circuits().iter().map(|c| c.lut_count()).collect(),
    })
}

/// Thin N = 2-era wrapper around [`run_combined_with_placements`], kept
/// for API stability.
///
/// # Errors
///
/// Fails if the placements do not fit the input or a leg cannot route.
pub fn run_pair_with_placements(
    input: &MultiModeInput,
    options: &FlowOptions,
    name: impl Into<String>,
    placements: &CombinedPlacements,
) -> Result<CombinedMetrics, FlowError> {
    run_combined_with_placements(input, options, name, placements)
}

/// Runs the full comparison for one N-mode problem, straight from the
/// mode circuits: input validation, then a compile-and-execute of the
/// [`crate::stage::combined_plan`] stage graph (the annealing legs fan
/// out, the combine stage joins them).
///
/// This is the N-ary primary entry point; [`run_pair`] delegates here,
/// so a 2-element slice produces output byte-identical to the historical
/// pair flow — and both are byte-identical to the pre-stage-graph
/// hand-wired drivers (pinned by the engine's golden-bytes suite).
///
/// # Errors
///
/// Fails on invalid inputs or if any flow leg cannot place or route.
pub fn run_combined_n(
    circuits: &[LutCircuit],
    options: &FlowOptions,
    name: impl Into<String>,
) -> Result<CombinedMetrics, FlowError> {
    let input = MultiModeInput::new(circuits.to_vec())?;
    run_pair(&input, options, name)
}

/// Runs the full comparison for one multi-mode circuit (any mode count —
/// the name is historical): compiles the combined stage graph and
/// executes it uncached.
///
/// # Errors
///
/// Fails if any flow cannot place or route.
pub fn run_pair(
    input: &MultiModeInput,
    options: &FlowOptions,
    name: impl Into<String>,
) -> Result<CombinedMetrics, FlowError> {
    let plan = crate::stage::combined_plan(input.clone(), *options);
    let run = plan.execute(&crate::stage::NoHooks, options.intra_parallelism);
    match run.artifact? {
        crate::stage::Artifact::Combined(mut metrics) => {
            metrics.name = name.into();
            Ok(metrics)
        }
        other => Err(FlowError::Internal(format!(
            "combined plan resolved to a {:?} artifact",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::{LutCircuit, TruthTable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = LutCircuit::new(name, 4);
        let mut drivers: Vec<mm_netlist::BlockId> = (0..n_inputs)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        for j in 0..n_luts {
            let fanin = rng.gen_range(2..=4.min(drivers.len()));
            let mut ins = Vec::new();
            while ins.len() < fanin {
                let d = drivers[rng.gen_range(0..drivers.len())];
                if !ins.contains(&d) {
                    ins.push(d);
                }
            }
            let tt = TruthTable::from_bits(ins.len(), rng.gen());
            let id = c
                .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.15))
                .unwrap();
            drivers.push(id);
        }
        for t in 0..3 {
            let d = drivers[drivers.len() - 1 - t];
            c.add_output(format!("o{t}"), d).unwrap();
        }
        c
    }

    #[test]
    fn pair_experiment_produces_consistent_metrics() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 6, 18, 31),
            random_circuit("m1", 6, 20, 32),
        ])
        .unwrap();
        let metrics = run_pair(&input, &FlowOptions::default(), "toy").unwrap();

        // Fig. 5 structure: MDR ≥ Diff ≥ DCS in routing bits is the
        // expected ordering on typical circuits; at minimum DCS < MDR.
        assert!(metrics.speedup_wirelength() > 1.0);
        assert!(metrics.speedup_edge() > 1.0);
        assert!(metrics.diff.routing_bits < metrics.mdr.routing_bits);
        // LUT bits identical in every scenario (always rewritten).
        assert_eq!(metrics.mdr.lut_bits, metrics.dcs_edge.lut_bits);
        assert_eq!(metrics.mdr.lut_bits, metrics.diff.lut_bits);
        // Wire accounting present and plausible.
        assert!(metrics.wires_mdr > 0.0);
        assert!(metrics.wire_ratio_wirelength() > 0.5);
        // Two similar-size modes: region ≈ half the static area.
        let area = metrics.area_vs_static();
        assert!(area > 0.4 && area < 0.7, "area ratio {area}");
    }

    #[test]
    fn pair_experiment_respects_fixed_width() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 5, 12, 41),
            random_circuit("m1", 5, 12, 42),
        ])
        .unwrap();
        let options = FlowOptions::default().with_fixed_width(14);
        let metrics = run_pair(&input, &options, "fixed").unwrap();
        assert_eq!(metrics.width_mdr, 14);
        assert_eq!(metrics.width_edge, 14);
        assert_eq!(metrics.width_wirelength, 14);
    }

    #[test]
    fn parallel_pair_is_byte_identical_to_serial() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 5, 14, 51),
            random_circuit("m1", 5, 15, 52),
        ])
        .unwrap();
        let serial_options = FlowOptions {
            intra_parallelism: 1,
            ..FlowOptions::default()
        };
        let parallel_options = FlowOptions {
            intra_parallelism: 0,
            ..FlowOptions::default()
        };
        let serial = run_pair(&input, &serial_options, "p").unwrap();
        let parallel = run_pair(&input, &parallel_options, "p").unwrap();
        assert_eq!(
            serial, parallel,
            "intra-job parallelism must not change results"
        );
    }

    #[test]
    fn staged_pair_equals_monolithic_pair() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 5, 12, 61),
            random_circuit("m1", 5, 13, 62),
        ])
        .unwrap();
        let options = FlowOptions::default().with_fixed_width(14);
        let placements = place_pair(&input, &options).unwrap();
        let staged = run_pair_with_placements(&input, &options, "s", &placements).unwrap();
        let whole = run_pair(&input, &options, "s").unwrap();
        assert_eq!(staged, whole);
    }

    #[test]
    fn combined_n_equals_pair_wrapper_for_two_modes() {
        let circuits = vec![
            random_circuit("m0", 5, 12, 91),
            random_circuit("m1", 5, 13, 92),
        ];
        let input = MultiModeInput::new(circuits.clone()).unwrap();
        let options = FlowOptions::default().with_fixed_width(14);
        let pair = run_pair(&input, &options, "n2").unwrap();
        let combined = run_combined_n(&circuits, &options, "n2").unwrap();
        assert_eq!(pair, combined, "run_pair is a thin run_combined_n wrapper");
    }

    #[test]
    fn three_mode_combined_comparison_runs() {
        let circuits = vec![
            random_circuit("m0", 5, 10, 101),
            random_circuit("m1", 5, 11, 102),
            random_circuit("m2", 5, 12, 103),
        ];
        let options = FlowOptions::default().with_fixed_width(14);
        let metrics = run_combined_n(&circuits, &options, "n3").unwrap();
        assert_eq!(metrics.mode_luts.len(), 3);
        assert_eq!(metrics.tunable_stats.modes, 3);
        assert!(metrics.wires_mdr > 0.0);
        assert!(metrics.mdr.routing_bits > 0);
        // The diff cost averages over the 6 ordered mode pairs and must
        // stay below rewriting the whole region.
        assert!(metrics.diff.routing_bits < metrics.mdr.routing_bits);
        // Three similar-size modes: region ≈ a third of the static area.
        let area = metrics.area_vs_static();
        assert!(area > 0.25 && area < 0.55, "area ratio {area}");
    }

    #[test]
    fn stale_pair_placements_rejected() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 5, 12, 71),
            random_circuit("m1", 5, 13, 72),
        ])
        .unwrap();
        let other = MultiModeInput::new(vec![
            random_circuit("x0", 5, 16, 73),
            random_circuit("x1", 5, 17, 74),
        ])
        .unwrap();
        let options = FlowOptions::default().with_fixed_width(14);
        let placements = place_pair(&other, &options).unwrap();
        assert!(run_pair_with_placements(&input, &options, "bad", &placements).is_err());
    }
}
