//! The paper's experiment driver (§IV): for each multi-mode circuit, run
//! MDR and both DCS variants on the *same* fabric and collect the metrics
//! behind Table I and Figures 5–7.
//!
//! Fabric sizing follows the paper per implementation: the array is sized
//! for the biggest mode (+20% area, shared by all flows — the
//! reconfigurable region is one physical resource), while each flow's
//! channel width is its own minimum +20% (MDR's width is the maximum over
//! its modes). Reconfiguration costs are therefore measured on the fabric
//! each tool flow would actually provision, exactly as a per-flow VPR run
//! would report them.

use crate::flow::resolve_width;
use crate::{FlowError, FlowOptions, MultiModeInput, TunableCircuit};
use mm_arch::RoutingGraph;
use mm_bitstream::{speedup, Config, ConfigModel, ParamConfig, RewriteCost};
use mm_boolexpr::ModeSet;
use mm_place::{place_combined, place_single, CostKind, PlacerOptions};
use mm_route::{nets_for_circuit, verify_routing, Router, RouterOptions};

/// All per-pair measurements used by the figures.
#[derive(Debug, Clone, PartialEq)]
pub struct PairMetrics {
    /// Human-readable id, e.g. `regexp0+regexp3`.
    pub name: String,
    /// Array side length (shared region).
    pub grid: usize,
    /// MDR channel width (max over modes, +20%).
    pub width_mdr: usize,
    /// Channel width of the edge-matched tunable circuit (+20%).
    pub width_edge: usize,
    /// Channel width of the wire-length tunable circuit (+20%).
    pub width_wirelength: usize,
    /// Reconfiguration cost of MDR (full region).
    pub mdr: RewriteCost,
    /// Diff-based rewrite (all LUT bits + differing routing cells),
    /// averaged over ordered mode pairs.
    pub diff: RewriteCost,
    /// DCS with edge-matching combined placement.
    pub dcs_edge: RewriteCost,
    /// DCS with wire-length combined placement.
    pub dcs_wirelength: RewriteCost,
    /// Mean wires per active mode under MDR.
    pub wires_mdr: f64,
    /// Mean wires per active mode under DCS edge matching.
    pub wires_edge: f64,
    /// Mean wires per active mode under DCS wire-length.
    pub wires_wirelength: f64,
    /// Tunable-circuit statistics (wire-length variant).
    pub tunable_stats: crate::TunableStats,
    /// Logic blocks of each mode (area bookkeeping).
    pub mode_luts: Vec<usize>,
}

impl PairMetrics {
    /// Fig. 5: reconfiguration speed-up of DCS (edge matching) over MDR.
    #[must_use]
    pub fn speedup_edge(&self) -> f64 {
        speedup(&self.mdr, &self.dcs_edge)
    }

    /// Fig. 5: reconfiguration speed-up of DCS (wire length) over MDR.
    #[must_use]
    pub fn speedup_wirelength(&self) -> f64 {
        speedup(&self.mdr, &self.dcs_wirelength)
    }

    /// Fig. 7: per-mode wire usage of DCS edge matching relative to MDR.
    #[must_use]
    pub fn wire_ratio_edge(&self) -> f64 {
        self.wires_edge / self.wires_mdr
    }

    /// Fig. 7: per-mode wire usage of DCS wire-length relative to MDR.
    #[must_use]
    pub fn wire_ratio_wirelength(&self) -> f64 {
        self.wires_wirelength / self.wires_mdr
    }

    /// §IV-C area: the multi-mode region (largest mode, +20%) relative to
    /// implementing all modes statically side by side.
    #[must_use]
    pub fn area_vs_static(&self) -> f64 {
        let max = *self.mode_luts.iter().max().expect("at least one mode") as f64;
        let sum: usize = self.mode_luts.iter().sum();
        max / sum as f64
    }
}

/// Runs the full comparison for one multi-mode circuit.
///
/// # Errors
///
/// Fails if any flow cannot place or route.
pub fn run_pair(
    input: &MultiModeInput,
    options: &FlowOptions,
    name: impl Into<String>,
) -> Result<PairMetrics, FlowError> {
    let base = options.base_arch(input);
    let single_router = RouterOptions {
        mode_count: 1,
        ..options.router
    };
    let multi_router = RouterOptions {
        mode_count: input.mode_count(),
        ..options.router
    };

    // ---- placements ------------------------------------------------------
    let mut mdr_placements = Vec::with_capacity(input.mode_count());
    for (m, circuit) in input.circuits().iter().enumerate() {
        let opts = PlacerOptions {
            cost: CostKind::WireLength,
            seed: options.placer.seed ^ (m as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ..options.placer
        };
        let (p, _) = place_single(circuit, &base, &opts)?;
        mdr_placements.push(p);
    }
    let edge_placer = PlacerOptions {
        cost: CostKind::EdgeMatching,
        ..options.placer
    };
    let (edge_placement, _) = place_combined(input.circuits(), &base, &edge_placer)?;
    let wl_placer = PlacerOptions {
        cost: CostKind::WireLength,
        ..options.placer
    };
    let (wl_placement, _) = place_combined(input.circuits(), &base, &wl_placer)?;

    let edge_tunable = TunableCircuit::from_placement(input.circuits(), &edge_placement, &base)?;
    let wl_tunable = TunableCircuit::from_placement(input.circuits(), &wl_placement, &base)?;
    edge_tunable
        .verify_projection(input.circuits(), &edge_placement)
        .map_err(FlowError::Internal)?;
    wl_tunable
        .verify_projection(input.circuits(), &wl_placement)
        .map_err(FlowError::Internal)?;

    // ---- per-flow channel widths (min + 20%) ------------------------------
    let width_mdr = {
        let mut w = 0usize;
        for (m, circuit) in input.circuits().iter().enumerate() {
            let placement = &mdr_placements[m];
            let wm = resolve_width(
                &base,
                options,
                &single_router,
                &format!("MDR mode {m}"),
                |rrg| nets_for_circuit(circuit, rrg, ModeSet::single(0), |b| placement.site_of(b)),
            )?;
            w = w.max(wm);
        }
        w
    };
    let width_edge = resolve_width(&base, options, &multi_router, "tunable (edge)", |rrg| {
        edge_tunable.route_nets(rrg)
    })?;
    let width_wl = resolve_width(&base, options, &multi_router, "tunable (wl)", |rrg| {
        wl_tunable.route_nets(rrg)
    })?;

    // ---- MDR on its own fabric (joint growth if negotiation stalls) --------
    let mut width_mdr = width_mdr;
    let (mdr_model, mdr_configs, mdr_wires) = loop {
        let mdr_arch = base.with_channel_width(width_mdr);
        let mdr_rrg = RoutingGraph::build(&mdr_arch);
        let mut configs = Vec::with_capacity(input.mode_count());
        let mut wires = Vec::with_capacity(input.mode_count());
        let mut ok = true;
        for circuit in input.circuits() {
            let placement = &mdr_placements[configs.len()];
            let nets = nets_for_circuit(circuit, &mdr_rrg, ModeSet::single(0), |b| {
                placement.site_of(b)
            });
            let mut router = Router::new(&mdr_rrg, single_router);
            let routing = router.route(&nets);
            if !routing.success {
                ok = false;
                break;
            }
            verify_routing(&mdr_rrg, &nets, &routing, 1).map_err(FlowError::Internal)?;
            wires.push(routing.total_wires(&mdr_rrg));
            configs.push(Config::from_routing(&routing));
        }
        if ok {
            break (ConfigModel::new(&mdr_arch, &mdr_rrg), configs, wires);
        }
        if width_mdr >= options.max_width {
            return Err(FlowError::Unroutable {
                max_width: options.max_width,
                context: "MDR at relaxed width".into(),
            });
        }
        width_mdr = (width_mdr + width_mdr.div_ceil(8)).min(options.max_width);
    };

    // ---- each DCS variant on its own fabric ---------------------------------
    let route_tunable = |tunable: &TunableCircuit,
                         width: usize,
                         label: &str|
     -> Result<(RewriteCost, Vec<usize>, usize), FlowError> {
        let (arch, rrg, nets, routing) = crate::flow::route_with_growth(
            &base,
            width,
            options.max_width,
            &multi_router,
            &format!("tunable circuit ({label}) at relaxed width"),
            |rrg| tunable.route_nets(rrg),
        )?;
        let model = ConfigModel::new(&arch, &rrg);
        verify_routing(&rrg, &nets, &routing, input.mode_count()).map_err(FlowError::Internal)?;
        let wires = (0..input.mode_count())
            .map(|m| routing.wires_in_mode(&rrg, m))
            .collect();
        let param = ParamConfig::from_routing(&routing, input.space());
        Ok((model.dcs_cost(&param), wires, arch.channel_width))
    };
    let (edge_cost, edge_wires, width_edge) = route_tunable(&edge_tunable, width_edge, "edge")?;
    let (wl_cost, wl_wires, width_wl) = route_tunable(&wl_tunable, width_wl, "wl")?;

    // ---- metrics --------------------------------------------------------------
    let mean = |w: &[usize]| -> f64 { w.iter().sum::<usize>() as f64 / w.len().max(1) as f64 };
    let diff = {
        let m = input.mode_count();
        let mut total = 0usize;
        let mut pairs = 0usize;
        for a in 0..m {
            for b in 0..m {
                if a != b {
                    total += mdr_model
                        .diff_cost(&mdr_configs[a], &mdr_configs[b])
                        .routing_bits;
                    pairs += 1;
                }
            }
        }
        RewriteCost {
            lut_bits: mdr_model.lut_bits,
            routing_bits: total.checked_div(pairs).unwrap_or_default(),
        }
    };

    Ok(PairMetrics {
        name: name.into(),
        grid: base.grid,
        width_mdr,
        width_edge,
        width_wirelength: width_wl,
        mdr: mdr_model.mdr_cost(),
        diff,
        dcs_edge: edge_cost,
        dcs_wirelength: wl_cost,
        wires_mdr: mean(&mdr_wires),
        wires_edge: mean(&edge_wires),
        wires_wirelength: mean(&wl_wires),
        tunable_stats: wl_tunable.stats(),
        mode_luts: input.circuits().iter().map(|c| c.lut_count()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::{LutCircuit, TruthTable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = LutCircuit::new(name, 4);
        let mut drivers: Vec<mm_netlist::BlockId> = (0..n_inputs)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        for j in 0..n_luts {
            let fanin = rng.gen_range(2..=4.min(drivers.len()));
            let mut ins = Vec::new();
            while ins.len() < fanin {
                let d = drivers[rng.gen_range(0..drivers.len())];
                if !ins.contains(&d) {
                    ins.push(d);
                }
            }
            let tt = TruthTable::from_bits(ins.len(), rng.gen());
            let id = c
                .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.15))
                .unwrap();
            drivers.push(id);
        }
        for t in 0..3 {
            let d = drivers[drivers.len() - 1 - t];
            c.add_output(format!("o{t}"), d).unwrap();
        }
        c
    }

    #[test]
    fn pair_experiment_produces_consistent_metrics() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 6, 18, 31),
            random_circuit("m1", 6, 20, 32),
        ])
        .unwrap();
        let metrics = run_pair(&input, &FlowOptions::default(), "toy").unwrap();

        // Fig. 5 structure: MDR ≥ Diff ≥ DCS in routing bits is the
        // expected ordering on typical circuits; at minimum DCS < MDR.
        assert!(metrics.speedup_wirelength() > 1.0);
        assert!(metrics.speedup_edge() > 1.0);
        assert!(metrics.diff.routing_bits < metrics.mdr.routing_bits);
        // LUT bits identical in every scenario (always rewritten).
        assert_eq!(metrics.mdr.lut_bits, metrics.dcs_edge.lut_bits);
        assert_eq!(metrics.mdr.lut_bits, metrics.diff.lut_bits);
        // Wire accounting present and plausible.
        assert!(metrics.wires_mdr > 0.0);
        assert!(metrics.wire_ratio_wirelength() > 0.5);
        // Two similar-size modes: region ≈ half the static area.
        let area = metrics.area_vs_static();
        assert!(area > 0.4 && area < 0.7, "area ratio {area}");
    }

    #[test]
    fn pair_experiment_respects_fixed_width() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 5, 12, 41),
            random_circuit("m1", 5, 12, 42),
        ])
        .unwrap();
        let options = FlowOptions::default().with_fixed_width(14);
        let metrics = run_pair(&input, &options, "fixed").unwrap();
        assert_eq!(metrics.width_mdr, 14);
        assert_eq!(metrics.width_edge, 14);
        assert_eq!(metrics.width_wirelength, 14);
    }
}
