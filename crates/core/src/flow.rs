//! The MDR and DCS tool flows (paper Fig. 2).
//!
//! * [`MdrFlow`] — Modular Dynamic Reconfiguration: every mode is placed
//!   and routed *separately* in the same reconfigurable region; switching
//!   rewrites the whole region.
//! * [`DcsFlow`] — the paper's flow: the modes are merged by combined
//!   placement into a tunable circuit, routed once by the mode-aware
//!   router, and emitted as a parameterized configuration.
//!
//! Both flows size the fabric the same way the paper does: array area and
//! channel width 20% above the minimum needed (§IV-B).

use crate::{FlowError, TunableCircuit};
use mm_arch::{Architecture, RoutingGraph};
use mm_bitstream::{Config, ConfigModel, ParamConfig, RewriteCost};
use mm_boolexpr::{ModeSet, ModeSpace};
use mm_netlist::LutCircuit;
use mm_place::{place_combined, CostKind, MultiPlacement, Placement, PlacerOptions};
use mm_route::{
    min_channel_width, nets_for_circuit, relaxed_width, verify_routing, RouteNet, Router,
    RouterOptions, Routing,
};

/// A validated multi-mode problem: the per-mode LUT circuits.
#[derive(Debug, Clone)]
pub struct MultiModeInput {
    circuits: Vec<LutCircuit>,
    space: ModeSpace,
}

impl MultiModeInput {
    /// Wraps the mode circuits, checking they are non-empty, agree on the
    /// LUT width and are individually valid.
    ///
    /// # Errors
    ///
    /// Fails on empty input, mismatched k, or invalid circuits.
    pub fn new(circuits: Vec<LutCircuit>) -> Result<Self, FlowError> {
        if circuits.is_empty() {
            return Err(FlowError::Input("at least one mode required".into()));
        }
        let k = circuits[0].k();
        for c in &circuits {
            if c.k() != k {
                return Err(FlowError::Input(format!(
                    "mode '{}' uses {}-LUTs, expected {k}",
                    c.name(),
                    c.k()
                )));
            }
            c.validate()
                .map_err(|e| FlowError::Input(format!("mode '{}': {e}", c.name())))?;
        }
        let space = ModeSpace::new(circuits.len());
        Ok(Self { circuits, space })
    }

    /// The mode circuits.
    #[must_use]
    pub fn circuits(&self) -> &[LutCircuit] {
        &self.circuits
    }

    /// Number of modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.circuits.len()
    }

    /// The mode space.
    #[must_use]
    pub fn space(&self) -> ModeSpace {
        self.space
    }

    /// The LUT width.
    #[must_use]
    pub fn k(&self) -> usize {
        self.circuits[0].k()
    }

    /// Logic blocks of the largest mode — what sizes the region.
    #[must_use]
    pub fn max_luts(&self) -> usize {
        self.circuits
            .iter()
            .map(LutCircuit::lut_count)
            .max()
            .unwrap_or(0)
    }

    /// IO pads of the largest mode.
    #[must_use]
    pub fn max_pads(&self) -> usize {
        self.circuits
            .iter()
            .map(|c| c.block_count() - c.lut_count())
            .max()
            .unwrap_or(0)
    }

    /// The reconfigurable region (paper: array area 20% above minimum).
    #[must_use]
    pub fn region(&self, io_capacity: usize) -> usize {
        Architecture::relaxed_grid_for(self.max_luts(), self.max_pads(), io_capacity)
    }
}

/// How the channel width is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthChoice {
    /// Binary-search the minimum width, then add 20% (paper §IV-B).
    Relaxed,
    /// Use a fixed width (fast runs, experiments with pinned fabrics).
    Fixed(usize),
}

/// Options shared by both flows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowOptions {
    /// Placer configuration (cost kind is overridden by [`DcsFlow`]).
    pub placer: PlacerOptions,
    /// Router configuration (mode count is set by the flows).
    pub router: RouterOptions,
    /// Channel-width policy.
    pub width: WidthChoice,
    /// Upper bound for the width search.
    pub max_width: usize,
    /// Input connection-block flexibility (fraction of the adjacent
    /// channel's tracks each input pin connects to).
    pub fc_in: f64,
    /// Output connection-block flexibility.
    pub fc_out: f64,
    /// Worker threads for parallel sections *inside* one flow run
    /// (per-mode MDR placements, the N+2 annealing legs and the routed
    /// flow legs of `run_combined_n`): `0` = one per independent task,
    /// `1` = strictly serial. Results are
    /// byte-identical at any setting (every task is independently
    /// seeded), so this deliberately does **not** participate in
    /// [`FlowOptions::fingerprint`] — serial and parallel runs share
    /// cache entries.
    pub intra_parallelism: usize,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            placer: PlacerOptions::default(),
            router: RouterOptions::default(),
            width: WidthChoice::Relaxed,
            max_width: 96,
            // Betz/Rose-recommended connection-block flexibilities; the
            // fully-connected fabric of `Architecture::new` is unrealistic
            // for configuration-bit accounting.
            fc_in: 0.4,
            fc_out: 0.25,
            intra_parallelism: 0,
        }
    }
}

/// Resolves the intra-job worker count for `tasks` independent tasks.
pub(crate) fn intra_threads(options: &FlowOptions, tasks: usize) -> usize {
    match options.intra_parallelism {
        0 => tasks.max(1),
        n => n,
    }
}

impl WidthChoice {
    /// A stable fingerprint of the width policy, used by the batch
    /// engine's stage cache keys.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        match self {
            WidthChoice::Relaxed => "relaxed".to_string(),
            WidthChoice::Fixed(w) => format!("fixed({w})"),
        }
    }
}

impl FlowOptions {
    /// A stable fingerprint of every option that affects flow results
    /// (floats by bit pattern), used by the batch engine's stage cache
    /// keys.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "flow-v1;{};{};width={};maxw={};fci={:016x};fco={:016x}",
            self.placer.fingerprint(),
            self.router.fingerprint(),
            self.width.fingerprint(),
            self.max_width,
            self.fc_in.to_bits(),
            self.fc_out.to_bits(),
        )
    }

    /// The base architecture (before width resolution) for an input.
    #[must_use]
    pub fn base_arch(&self, input: &MultiModeInput) -> Architecture {
        Architecture::new(input.k(), input.region(2), 8)
            .with_fc(self.fc_in, self.fc_out)
            .with_switch_pattern(mm_arch::SwitchPattern::Wilton)
    }

    /// Returns a copy with a fixed channel width.
    #[must_use]
    pub fn with_fixed_width(mut self, w: usize) -> Self {
        self.width = WidthChoice::Fixed(w);
        self
    }

    /// Returns a copy with a different placer seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.placer.seed = seed;
        self
    }
}

/// Per-sink routing criticalities for a net list, produced fresh for
/// each routing-resource graph (node ids change with channel width).
pub(crate) type CritFn<'a> = &'a dyn Fn(&RoutingGraph, &[RouteNet]) -> Vec<Vec<f64>>;

/// Owned form of [`CritFn`], as built by `estimated_criticality_fn`.
type BoxedCritFn<'a> = Box<dyn Fn(&RoutingGraph, &[RouteNet]) -> Vec<Vec<f64>> + 'a>;

/// Routes nets at `width`, growing the channel (+1, +2, +4, …) up to
/// `max_width` if negotiation fails — congestion convergence is not
/// strictly monotone in width under an iteration cap, so the relaxed
/// width occasionally needs another track.
///
/// With `crit`, each width attempt routes timing-driven: the closure is
/// re-evaluated against the attempt's graph and nets so criticalities
/// always key the right RR nodes.
pub(crate) fn route_with_growth(
    base: &Architecture,
    width: usize,
    max_width: usize,
    router: &RouterOptions,
    context: &str,
    crit: Option<CritFn<'_>>,
    mut nets: impl FnMut(&RoutingGraph) -> Vec<RouteNet>,
) -> Result<(Architecture, RoutingGraph, Vec<RouteNet>, Routing), FlowError> {
    let mut grow = 0usize;
    loop {
        let w = (width + grow).min(max_width);
        let arch = base.with_channel_width(w);
        let rrg = RoutingGraph::build(&arch);
        let net_list = nets(&rrg);
        // `route` seeds each net's initial bounding box from the
        // placement geometry the nets carry (per-net HPWL, see
        // `RouterOptions::hpwl_margin_div`) instead of a fixed margin.
        let mut engine = Router::new(&rrg, *router);
        let routing = match crit {
            Some(f) => {
                let rows = f(&rrg, &net_list);
                engine.route_with_criticality(&net_list, &rows)
            }
            None => engine.route(&net_list),
        };
        if routing.success {
            return Ok((arch, rrg, net_list, routing));
        }
        if routing.unrouted_sinks > 0 {
            // Hard unreachability, not congestion: the fabric family
            // replicates the same connectivity at every width, so the
            // growth retries cannot help — fail the route stage with
            // the offending nets immediately.
            return Err(FlowError::UnreachableSinks {
                context: context.to_string(),
                nets: routing
                    .unreachable_nets(&net_list)
                    .iter()
                    .map(|s| (*s).to_string())
                    .collect(),
            });
        }
        if w >= max_width {
            return Err(FlowError::Unroutable {
                max_width,
                context: context.to_string(),
            });
        }
        grow = if grow == 0 { 1 } else { grow * 2 };
    }
}

/// Resolves the channel width for a net-building closure: either fixed, or
/// minimum + 20%.
pub(crate) fn resolve_width(
    arch: &Architecture,
    options: &FlowOptions,
    router: &RouterOptions,
    context: &str,
    nets: impl FnMut(&RoutingGraph) -> Vec<RouteNet>,
) -> Result<usize, FlowError> {
    match options.width {
        WidthChoice::Fixed(w) => Ok(w),
        WidthChoice::Relaxed => {
            let found = min_channel_width(arch, router, options.max_width, nets).ok_or(
                FlowError::Unroutable {
                    max_width: options.max_width,
                    context: context.to_string(),
                },
            )?;
            Ok(relaxed_width(found.min_width))
        }
    }
}

/// Result of the MDR flow.
#[derive(Debug)]
pub struct MdrResult {
    /// The sized architecture (shared region).
    pub arch: Architecture,
    /// The routing-resource graph at the final width.
    pub rrg: RoutingGraph,
    /// Configuration memory model.
    pub model: ConfigModel,
    /// Per-mode placements.
    pub placements: Vec<Placement>,
    /// Per-mode routings.
    pub routings: Vec<Routing>,
    /// Per-mode full configurations.
    pub configs: Vec<Config>,
}

impl MdrResult {
    /// The MDR reconfiguration cost: the full region.
    #[must_use]
    pub fn mdr_cost(&self) -> RewriteCost {
        self.model.mdr_cost()
    }

    /// The diff cost between two modes' configurations.
    #[must_use]
    pub fn diff_cost(&self, a: usize, b: usize) -> RewriteCost {
        self.model.diff_cost(&self.configs[a], &self.configs[b])
    }

    /// The diff cost averaged over all ordered mode pairs.
    #[must_use]
    pub fn average_diff_cost(&self) -> RewriteCost {
        let m = self.configs.len();
        if m < 2 {
            return RewriteCost {
                lut_bits: self.model.lut_bits,
                routing_bits: 0,
            };
        }
        let mut total = 0usize;
        let mut pairs = 0usize;
        for a in 0..m {
            for b in 0..m {
                if a != b {
                    total += self.diff_cost(a, b).routing_bits;
                    pairs += 1;
                }
            }
        }
        RewriteCost {
            lut_bits: self.model.lut_bits,
            routing_bits: total / pairs,
        }
    }

    /// Wires used by mode `mode` when active.
    #[must_use]
    pub fn wires_in_mode(&self, mode: usize) -> usize {
        self.routings[mode].total_wires(&self.rrg)
    }

    /// Mean wires per mode.
    #[must_use]
    pub fn mean_wires(&self) -> f64 {
        let total: usize = (0..self.routings.len())
            .map(|m| self.wires_in_mode(m))
            .sum();
        total as f64 / self.routings.len() as f64
    }
}

/// The Modular Dynamic Reconfiguration baseline flow.
#[derive(Debug, Clone, Copy)]
pub struct MdrFlow {
    options: FlowOptions,
}

impl MdrFlow {
    /// Creates the flow with the given options.
    #[must_use]
    pub fn new(options: FlowOptions) -> Self {
        Self { options }
    }

    /// The flow options.
    #[must_use]
    pub fn options(&self) -> &FlowOptions {
        &self.options
    }

    /// Runs MDR: places and routes every mode separately on the shared
    /// region.
    ///
    /// # Errors
    ///
    /// Fails if a mode cannot be placed or routed.
    pub fn run(&self, input: &MultiModeInput) -> Result<MdrResult, FlowError> {
        let placements = self.place(input)?;
        self.run_with_placements(input, placements)
    }

    /// Stage 1 of MDR: conventional single-circuit annealing of every
    /// mode on the shared region. The modes are independent (each gets a
    /// derived seed), so they anneal concurrently on the work-stealing
    /// pool — serially with [`FlowOptions::intra_parallelism`] `== 1`,
    /// with byte-identical results either way.
    ///
    /// This is the expensive, seed-determined stage; the batch engine
    /// caches its output by content address.
    ///
    /// # Errors
    ///
    /// Fails if a mode cannot be placed.
    pub fn place(&self, input: &MultiModeInput) -> Result<Vec<Placement>, FlowError> {
        let base = self.options.base_arch(input);
        let placer = PlacerOptions {
            cost: CostKind::WireLength,
            ..self.options.placer
        };
        let modes: Vec<usize> = (0..input.mode_count()).collect();
        let threads = crate::flow::intra_threads(&self.options, modes.len());
        crate::pool::run_ordered(
            modes,
            threads,
            |_, m| {
                let opts = PlacerOptions {
                    seed: placer.seed ^ (m as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    ..placer
                };
                mm_place::place_single(&input.circuits()[m], &base, &opts)
                    .map(|(p, _)| p)
                    .map_err(FlowError::from)
            },
            |_, _| {},
        )
        .into_iter()
        .collect()
    }

    /// Stage 2 of MDR: width resolution, per-mode routing and
    /// configuration extraction on top of existing placements.
    ///
    /// # Errors
    ///
    /// Fails if the placements do not fit the input or a mode cannot be
    /// routed.
    pub fn run_with_placements(
        &self,
        input: &MultiModeInput,
        placements: Vec<Placement>,
    ) -> Result<MdrResult, FlowError> {
        let base = self.options.base_arch(input);
        let router = RouterOptions {
            mode_count: 1,
            ..self.options.router
        };
        if placements.len() != input.mode_count() {
            return Err(FlowError::Input(format!(
                "{} placements for {} modes",
                placements.len(),
                input.mode_count()
            )));
        }
        // Wrap (not clone) the placements for verification, then take
        // them back.
        let wrapped = MultiPlacement { modes: placements };
        mm_place::verify_placement(input.circuits(), &base, &wrapped).map_err(FlowError::Input)?;
        let placements = wrapped.modes;

        // Width: the maximum over the modes' minima, relaxed 20%.
        let width = match self.options.width {
            WidthChoice::Fixed(w) => w,
            WidthChoice::Relaxed => {
                let mut w = 0usize;
                for (m, circuit) in input.circuits().iter().enumerate() {
                    let placement = &placements[m];
                    let found = min_channel_width(&base, &router, self.options.max_width, |rrg| {
                        nets_for_circuit(circuit, rrg, ModeSet::single(0), |b| placement.site_of(b))
                    })
                    .ok_or(FlowError::Unroutable {
                        max_width: self.options.max_width,
                        context: format!("MDR mode {m}"),
                    })?;
                    w = w.max(found.min_width);
                }
                relaxed_width(w)
            }
        };

        // All modes must route at one shared width; grow it together if a
        // mode fails to converge.
        let mut final_width = width;
        let (arch, rrg, routings, configs) = loop {
            let arch = base.with_channel_width(final_width);
            let rrg = RoutingGraph::build(&arch);
            // One router serves every mode: `route` resets congestion
            // state on entry (and HPWL-seeds each net's bounding box
            // from the placement geometry), so the scratch arena is
            // built once per width instead of once per mode.
            let mut route_engine = Router::new(&rrg, router);
            let mut routings = Vec::with_capacity(input.mode_count());
            let mut configs = Vec::with_capacity(input.mode_count());
            let mut ok = true;
            for (m, circuit) in input.circuits().iter().enumerate() {
                let placement = &placements[m];
                let nets =
                    nets_for_circuit(circuit, &rrg, ModeSet::single(0), |b| placement.site_of(b));
                let routing = route_engine.route(&nets);
                if !routing.success {
                    if routing.unrouted_sinks > 0 {
                        return Err(FlowError::UnreachableSinks {
                            context: format!("MDR mode {m}"),
                            nets: routing
                                .unreachable_nets(&nets)
                                .iter()
                                .map(|s| (*s).to_string())
                                .collect(),
                        });
                    }
                    ok = false;
                    break;
                }
                verify_routing(&rrg, &nets, &routing, 1).map_err(FlowError::Internal)?;
                configs.push(Config::from_routing(&routing));
                routings.push(routing);
            }
            if ok {
                break (arch, rrg, routings, configs);
            }
            if final_width >= self.options.max_width {
                return Err(FlowError::Unroutable {
                    max_width: self.options.max_width,
                    context: "MDR at final width".into(),
                });
            }
            final_width = (final_width + final_width.div_ceil(8)).min(self.options.max_width);
        };
        let model = ConfigModel::new(&arch, &rrg);

        Ok(MdrResult {
            arch,
            rrg,
            model,
            placements,
            routings,
            configs,
        })
    }
}

/// Result of the DCS multi-mode flow.
#[derive(Debug)]
pub struct DcsResult {
    /// The sized architecture.
    pub arch: Architecture,
    /// The routing-resource graph at the final width.
    pub rrg: RoutingGraph,
    /// Configuration memory model.
    pub model: ConfigModel,
    /// The combined placement.
    pub placement: MultiPlacement,
    /// The merged tunable circuit.
    pub tunable: TunableCircuit,
    /// The mode-aware routing of the tunable circuit.
    pub routing: Routing,
    /// The parameterized configuration.
    pub param: ParamConfig,
}

impl DcsResult {
    /// Parameterized routing bits — what the reconfiguration manager
    /// rewrites on a mode switch (besides the LUT bits).
    #[must_use]
    pub fn parameterized_routing_bits(&self) -> usize {
        self.param.parameterized_bits()
    }

    /// The DCS reconfiguration cost.
    #[must_use]
    pub fn dcs_cost(&self) -> RewriteCost {
        self.model.dcs_cost(&self.param)
    }

    /// The MDR cost on the *same* fabric (for speed-up ratios).
    #[must_use]
    pub fn mdr_cost(&self) -> RewriteCost {
        self.model.mdr_cost()
    }

    /// Wires used by mode `mode` when active.
    #[must_use]
    pub fn wires_in_mode(&self, mode: usize) -> usize {
        self.routing.wires_in_mode(&self.rrg, mode)
    }

    /// Mean wires per mode.
    #[must_use]
    pub fn mean_wires(&self) -> f64 {
        let m = self.tunable.space().mode_count();
        let total: usize = (0..m).map(|i| self.wires_in_mode(i)).sum();
        total as f64 / m as f64
    }

    /// Per-mode routed critical-path delays (STA over the actual wire
    /// segments of this result's routing). `circuits` must be the mode
    /// circuits the flow ran on.
    ///
    /// # Errors
    ///
    /// Fails if a mode's connections are not covered by the routing or
    /// a circuit is combinationally cyclic.
    pub fn critical_paths(&self, circuits: &[LutCircuit]) -> Result<Vec<f64>, FlowError> {
        // `route_nets` is a pure function of the tunable circuit and the
        // graph, so this rebuilds exactly the net list that was routed.
        let nets = self.tunable.route_nets(&self.rrg);
        circuits
            .iter()
            .enumerate()
            .map(|(m, c)| {
                let p = &self.placement.modes[m];
                mm_sta::analyze_routed(c, |b| p.site_of(b), &self.rrg, &nets, &self.routing, m)
                    .map(|a| a.critical_path)
                    .map_err(|e| FlowError::Internal(format!("mode '{}' STA: {e}", c.name())))
            })
            .collect()
    }
}

/// Builds the per-sink routing-criticality closure for a timing-driven
/// DCS run: per-mode STA under placement-estimated (Manhattan) delays,
/// collapsed onto RR source/sink node pairs by max over modes.
///
/// Criticalities are computed eagerly (so STA errors surface here); the
/// returned closure only re-keys them onto whichever graph a width
/// attempt builds. Connections the net list does not carry (none today)
/// would default to 0.0 — plain congestion routing, never a panic.
fn estimated_criticality_fn<'a>(
    circuits: &'a [LutCircuit],
    placement: &'a MultiPlacement,
) -> Result<BoxedCritFn<'a>, FlowError> {
    let manhattan = |a: mm_arch::Site, b: mm_arch::Site| -> f64 {
        f64::from(u32::from(a.x.abs_diff(b.x)) + u32::from(a.y.abs_diff(b.y)))
    };
    let mut mode_crits: Vec<Vec<f64>> = Vec::with_capacity(circuits.len());
    for (m, c) in circuits.iter().enumerate() {
        let p = &placement.modes[m];
        let analysis = mm_sta::analyze_estimated(c, |s, d| manhattan(p.site_of(s), p.site_of(d)))
            .map_err(|e| FlowError::Internal(format!("mode '{}' STA: {e}", c.name())))?;
        mode_crits.push(analysis.criticalities());
    }
    Ok(Box::new(move |rrg, nets| {
        let mut by_pair: std::collections::HashMap<(mm_arch::RrNodeId, mm_arch::RrNodeId), f64> =
            std::collections::HashMap::new();
        for (m, c) in circuits.iter().enumerate() {
            let p = &placement.modes[m];
            for (ci, (src, dst)) in c.connections().into_iter().enumerate() {
                let key = (rrg.source_at(p.site_of(src)), rrg.sink_at(p.site_of(dst)));
                let slot = by_pair.entry(key).or_insert(0.0);
                if mode_crits[m][ci] > *slot {
                    *slot = mode_crits[m][ci];
                }
            }
        }
        nets.iter()
            .map(|net| {
                net.sinks
                    .iter()
                    .map(|s| by_pair.get(&(net.source, s.node)).copied().unwrap_or(0.0))
                    .collect()
            })
            .collect()
    }))
}

/// The paper's flow: merge by combined placement, then Dynamic Circuit
/// Specialization.
#[derive(Debug, Clone, Copy)]
pub struct DcsFlow {
    options: FlowOptions,
    cost: CostKind,
}

impl DcsFlow {
    /// Creates the flow with the paper's default wire-length-optimised
    /// combined placement.
    #[must_use]
    pub fn new(options: FlowOptions) -> Self {
        Self {
            options,
            cost: CostKind::WireLength,
        }
    }

    /// Selects the combined-placement cost function (wire length vs edge
    /// matching).
    #[must_use]
    pub fn with_cost(mut self, cost: CostKind) -> Self {
        self.cost = cost;
        self
    }

    /// The flow options.
    #[must_use]
    pub fn options(&self) -> &FlowOptions {
        &self.options
    }

    /// The combined-placement cost function.
    #[must_use]
    pub fn cost(&self) -> CostKind {
        self.cost
    }

    /// Runs the flow: combined placement → tunable circuit → mode-aware
    /// routing → parameterized configuration.
    ///
    /// # Errors
    ///
    /// Fails on placement/routing failure or verification errors.
    pub fn run(&self, input: &MultiModeInput) -> Result<DcsResult, FlowError> {
        let placement = self.place(input)?;
        self.run_with_placement(input, placement)
    }

    /// Stage 1 of DCS: the combined placement of all modes (paper
    /// §III-A/B).
    ///
    /// This is the expensive, seed-determined stage; the batch engine
    /// caches its output by content address.
    ///
    /// # Errors
    ///
    /// Fails if the modes cannot be placed.
    pub fn place(&self, input: &MultiModeInput) -> Result<MultiPlacement, FlowError> {
        let base = self.options.base_arch(input);
        let placer = PlacerOptions {
            cost: self.cost,
            ..self.options.placer
        };
        let (placement, _) = place_combined(input.circuits(), &base, &placer)?;
        Ok(placement)
    }

    /// Stage 2 of DCS: tunable-circuit extraction, mode-aware routing and
    /// parameterized-configuration derivation on top of an existing
    /// combined placement.
    ///
    /// # Errors
    ///
    /// Fails if the placement does not fit the input, or on
    /// routing/verification failure.
    pub fn run_with_placement(
        &self,
        input: &MultiModeInput,
        placement: MultiPlacement,
    ) -> Result<DcsResult, FlowError> {
        let base = self.options.base_arch(input);
        let router = RouterOptions {
            mode_count: input.mode_count(),
            ..self.options.router
        };
        mm_place::verify_placement(input.circuits(), &base, &placement)
            .map_err(FlowError::Input)?;

        let tunable = TunableCircuit::from_placement(input.circuits(), &placement, &base)?;
        tunable
            .verify_projection(input.circuits(), &placement)
            .map_err(FlowError::Internal)?;

        // Timing-driven runs estimate per-connection criticality from the
        // placement (Manhattan distances) and blend it into the router's
        // wire costs; the width search itself stays congestion-only so
        // fabrics are sized identically across cost kinds.
        let crit_fn = if matches!(self.cost, CostKind::Timing { .. }) {
            Some(estimated_criticality_fn(input.circuits(), &placement)?)
        } else {
            None
        };

        let width = resolve_width(&base, &self.options, &router, "tunable circuit", |rrg| {
            tunable.route_nets(rrg)
        })?;
        let (arch, rrg, nets, routing) = route_with_growth(
            &base,
            width,
            self.options.max_width,
            &router,
            "tunable circuit at final width",
            crit_fn.as_deref(),
            |rrg| tunable.route_nets(rrg),
        )?;
        // Ends the criticality closure's borrow of `placement` (the box
        // has drop glue) before the result takes ownership.
        drop(crit_fn);
        let model = ConfigModel::new(&arch, &rrg);
        verify_routing(&rrg, &nets, &routing, input.mode_count()).map_err(FlowError::Internal)?;

        let param = ParamConfig::from_routing(&routing, input.space());

        Ok(DcsResult {
            arch,
            rrg,
            model,
            placement,
            tunable,
            routing,
            param,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_bitstream::speedup;
    use mm_netlist::TruthTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A deterministic random circuit (mirrors the placer's test helper).
    fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = LutCircuit::new(name, 4);
        let mut drivers: Vec<mm_netlist::BlockId> = (0..n_inputs)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        for j in 0..n_luts {
            let fanin = rng.gen_range(2..=4.min(drivers.len()));
            let mut ins = Vec::new();
            while ins.len() < fanin {
                let d = drivers[rng.gen_range(0..drivers.len())];
                if !ins.contains(&d) {
                    ins.push(d);
                }
            }
            let tt = TruthTable::from_bits(ins.len(), rng.gen());
            let id = c
                .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
                .unwrap();
            drivers.push(id);
        }
        for t in 0..3 {
            let d = drivers[drivers.len() - 1 - t];
            c.add_output(format!("o{t}"), d).unwrap();
        }
        c
    }

    fn small_input() -> MultiModeInput {
        MultiModeInput::new(vec![
            random_circuit("m0", 6, 20, 11),
            random_circuit("m1", 6, 22, 12),
        ])
        .unwrap()
    }

    #[test]
    fn input_validation() {
        assert!(MultiModeInput::new(vec![]).is_err());
        let a = random_circuit("a", 4, 5, 1);
        let mut b = LutCircuit::new("b", 5);
        let i = b.add_input("i").unwrap();
        b.add_output("o", i).unwrap();
        assert!(
            MultiModeInput::new(vec![a.clone(), b]).is_err(),
            "k mismatch"
        );
        let ok = MultiModeInput::new(vec![a]).unwrap();
        assert_eq!(ok.mode_count(), 1);
    }

    #[test]
    fn region_sizing_follows_biggest_mode() {
        let input = small_input();
        assert_eq!(input.max_luts(), 22);
        // ceil(sqrt(22 * 1.2)) = 6.
        assert_eq!(input.region(2), 6);
    }

    #[test]
    fn mdr_flow_end_to_end() {
        let input = small_input();
        let result = MdrFlow::new(FlowOptions::default()).run(&input).unwrap();
        assert_eq!(result.placements.len(), 2);
        assert_eq!(result.routings.len(), 2);
        let mdr = result.mdr_cost();
        assert!(mdr.routing_bits > mdr.lut_bits, "routing dominates");
        // The diff cost is strictly smaller than the full region.
        let diff = result.diff_cost(0, 1);
        assert!(diff.routing_bits < mdr.routing_bits);
        assert!(result.mean_wires() > 0.0);
    }

    #[test]
    fn dcs_flow_end_to_end_and_beats_mdr() {
        let input = small_input();
        let mdr = MdrFlow::new(FlowOptions::default()).run(&input).unwrap();
        let dcs = DcsFlow::new(FlowOptions::default()).run(&input).unwrap();
        assert!(dcs.routing.success);
        let s = speedup(&mdr.mdr_cost(), &dcs.dcs_cost());
        assert!(s > 1.0, "DCS must beat full-region rewrites, got {s:.2}");
        // Structure sanity.
        let stats = dcs.tunable.stats();
        assert_eq!(stats.modes, 2);
        assert!(stats.tunable_luts >= input.max_luts());
        assert!(dcs.parameterized_routing_bits() > 0);
    }

    #[test]
    fn fixed_width_skips_search() {
        let input = small_input();
        let options = FlowOptions::default().with_fixed_width(12);
        let dcs = DcsFlow::new(options).run(&input).unwrap();
        assert_eq!(dcs.arch.channel_width, 12);
    }

    #[test]
    fn edge_matching_cost_flows_too() {
        let input = small_input();
        let options = FlowOptions::default();
        let dcs = DcsFlow::new(options)
            .with_cost(CostKind::EdgeMatching)
            .run(&input)
            .unwrap();
        assert!(dcs.routing.success);
        assert!(dcs.tunable.merged_connection_count() > 0);
    }

    #[test]
    fn staged_run_equals_monolithic_run() {
        let input = small_input();
        let options = FlowOptions::default().with_fixed_width(12);
        let flow = DcsFlow::new(options);
        let placement = flow.place(&input).unwrap();
        let staged = flow.run_with_placement(&input, placement).unwrap();
        let whole = flow.run(&input).unwrap();
        assert_eq!(
            staged.param.parameterized_bits(),
            whole.param.parameterized_bits()
        );
        assert_eq!(staged.arch.channel_width, whole.arch.channel_width);
        assert_eq!(
            staged.routing.total_wires(&staged.rrg),
            whole.routing.total_wires(&whole.rrg)
        );

        let mdr_flow = MdrFlow::new(options);
        let placements = mdr_flow.place(&input).unwrap();
        let staged = mdr_flow.run_with_placements(&input, placements).unwrap();
        let whole = mdr_flow.run(&input).unwrap();
        assert_eq!(staged.mdr_cost(), whole.mdr_cost());
        assert_eq!(staged.diff_cost(0, 1), whole.diff_cost(0, 1));
    }

    #[test]
    fn stale_placement_rejected() {
        let input = small_input();
        let other = MultiModeInput::new(vec![
            random_circuit("m0", 6, 24, 77),
            random_circuit("m1", 6, 25, 78),
        ])
        .unwrap();
        let options = FlowOptions::default().with_fixed_width(12);
        let flow = DcsFlow::new(options);
        // A placement computed for different circuits must not silently
        // produce a result (this is the cache-poisoning guard).
        let placement = flow.place(&other).unwrap();
        let err = flow.run_with_placement(&input, placement);
        assert!(err.is_err());
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let a = FlowOptions::default();
        assert_eq!(a.fingerprint(), FlowOptions::default().fingerprint());
        let b = FlowOptions::default().with_seed(1);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = FlowOptions::default().with_fixed_width(9);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = FlowOptions::default();
        d.router.astar_fac = 1.3;
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = FlowOptions::default();
        e.placer.inner_num = 2.0;
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn unreachable_sinks_fail_fast() {
        // A "sink" that is really a SOURCE node has no incoming edges, so
        // no channel width can reach it: the route stage must surface the
        // structured error instead of burning width-growth retries.
        let arch = Architecture::new(4, 3, 4);
        let err = route_with_growth(
            &arch,
            4,
            64,
            &RouterOptions::default(),
            "growth test",
            None,
            |rrg| {
                vec![RouteNet {
                    name: "stuck".into(),
                    source: rrg.logic_source(mm_arch::Site::new(1, 1, 0)),
                    sinks: vec![mm_route::RouteSink {
                        node: rrg.logic_source(mm_arch::Site::new(3, 3, 0)),
                        activation: ModeSet::of(&[0]),
                    }],
                }]
            },
        )
        .unwrap_err();
        match err {
            FlowError::UnreachableSinks { context, nets } => {
                assert_eq!(context, "growth test");
                assert_eq!(nets, vec!["stuck".to_string()]);
            }
            other => panic!("expected UnreachableSinks, got {other}"),
        }
    }

    #[test]
    fn unroutable_reported() {
        let input = small_input();
        let options = FlowOptions {
            max_width: 1,
            router: RouterOptions {
                max_iterations: 3,
                ..RouterOptions::default()
            },
            ..FlowOptions::default()
        };
        let err = DcsFlow::new(options).run(&input).unwrap_err();
        assert!(matches!(err, FlowError::Unroutable { .. }), "{err}");
    }
}
