//! Tunable circuits — the merge of per-mode LUT circuits (paper §III).
//!
//! "Merging of several LUT circuits into a Tunable circuit consists of two
//! steps: 1) determine which LUTs will be implemented using the same
//! Tunable LUT; 2) the annotation of the connections with the appropriate
//! activation function."
//!
//! Step 1 is decided by the *combined placement* (`mm-place`): LUTs placed
//! on the same physical site share a tunable LUT. This module performs the
//! extraction: it derives the tunable LUTs (with their parameterized
//! truth-table bits, Fig. 4) and the tunable connections (with their
//! activation functions, Fig. 3) from the placed mode circuits.

use crate::FlowError;
use mm_arch::{Site, SiteKind};
use mm_boolexpr::{ModeSet, ModeSpace};
use mm_netlist::{BlockId, BlockKind, LutCircuit, TruthTable};
use mm_place::MultiPlacement;
use mm_route::{RouteNet, RouteSink};
use std::collections::HashMap;

/// One physical site of the merged circuit with its per-mode occupants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunableSite {
    /// The physical location.
    pub site: Site,
    /// The block implemented here in each mode (`None` = unused in that
    /// mode).
    pub occupants: Vec<Option<BlockId>>,
    /// Whether this is a logic site (tunable LUT) or an IO site.
    pub is_logic: bool,
}

/// A tunable connection: a source site, a sink site and the activation
/// function telling in which modes the connection must be realised
/// (Fig. 3: merged connections get the OR of the mode products).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunableConnection {
    /// Driving site.
    pub source: Site,
    /// Consuming site.
    pub sink: Site,
    /// Modes in which the connection exists.
    pub activation: ModeSet,
}

/// The parameterized configuration of one tunable LUT (Fig. 4): each of
/// the `2^k` truth-table cells and the flip-flop select bit expressed as a
/// Boolean function of the mode bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunableLutBits {
    /// Truth-table cells; `truth[j]` is the function of cell `j`.
    pub truth: Vec<ModeSet>,
    /// The sequential-output select bit.
    pub ff_select: ModeSet,
}

impl TunableLutBits {
    /// Number of parameterized cells (functions that are not constant).
    #[must_use]
    pub fn parameterized_bits(&self, space: ModeSpace) -> usize {
        self.truth
            .iter()
            .chain(std::iter::once(&self.ff_select))
            .filter(|f| f.is_parameterized(space))
            .count()
    }
}

/// The merged multi-mode circuit: tunable LUTs on physical sites,
/// connected by activation-annotated tunable connections.
#[derive(Debug, Clone)]
pub struct TunableCircuit {
    space: ModeSpace,
    k: usize,
    sites: Vec<TunableSite>,
    site_index: HashMap<Site, usize>,
    connections: Vec<TunableConnection>,
}

impl TunableCircuit {
    /// Extracts the tunable circuit from a combined placement: "Given a
    /// placement of all the mode circuits on the reconfigurable region, a
    /// Tunable circuit can easily be extracted. The LUTs positioned on the
    /// same physical LUT will be implemented using the same Tunable LUT."
    ///
    /// # Errors
    ///
    /// Fails if circuits/placement disagree or the placement is incomplete.
    pub fn from_placement(
        circuits: &[LutCircuit],
        placement: &MultiPlacement,
        arch: &mm_arch::Architecture,
    ) -> Result<Self, FlowError> {
        if circuits.is_empty() {
            return Err(FlowError::Input("no mode circuits".into()));
        }
        if placement.mode_count() != circuits.len() {
            return Err(FlowError::Input(format!(
                "placement has {} modes, circuits {}",
                placement.mode_count(),
                circuits.len()
            )));
        }
        let space = ModeSpace::new(circuits.len());
        let k = circuits[0].k();
        if circuits.iter().any(|c| c.k() != k) {
            return Err(FlowError::Input("mode circuits disagree on k".into()));
        }

        let mut sites: Vec<TunableSite> = Vec::new();
        let mut site_index: HashMap<Site, usize> = HashMap::new();
        for (m, circuit) in circuits.iter().enumerate() {
            for id in circuit.block_ids() {
                let site = placement.modes[m]
                    .try_site_of(id)
                    .ok_or_else(|| FlowError::Input(format!("unplaced block {id}")))?;
                let is_logic = match arch.site_kind(site) {
                    Some(SiteKind::Logic) => true,
                    Some(SiteKind::Io) => false,
                    None => {
                        return Err(FlowError::Input(format!("illegal site {site}")));
                    }
                };
                let idx = *site_index.entry(site).or_insert_with(|| {
                    sites.push(TunableSite {
                        site,
                        occupants: vec![None; circuits.len()],
                        is_logic,
                    });
                    sites.len() - 1
                });
                if sites[idx].occupants[m].is_some() {
                    return Err(FlowError::Input(format!(
                        "two mode-{m} blocks on site {site}"
                    )));
                }
                sites[idx].occupants[m] = Some(id);
            }
        }

        // Connections with merged activation functions.
        let mut conn_map: HashMap<(Site, Site), ModeSet> = HashMap::new();
        for (m, circuit) in circuits.iter().enumerate() {
            let product = space.product(m);
            for (src, dst) in circuit.connections() {
                let key = (
                    placement.modes[m].site_of(src),
                    placement.modes[m].site_of(dst),
                );
                *conn_map.entry(key).or_insert(ModeSet::EMPTY) |= product;
            }
        }
        let mut connections: Vec<TunableConnection> = conn_map
            .into_iter()
            .map(|((source, sink), activation)| TunableConnection {
                source,
                sink,
                activation,
            })
            .collect();
        connections.sort_by_key(|c| (c.source, c.sink));

        Ok(Self {
            space,
            k,
            sites,
            site_index,
            connections,
        })
    }

    /// The mode space.
    #[must_use]
    pub fn space(&self) -> ModeSpace {
        self.space
    }

    /// LUT width of the architecture.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The occupied sites.
    #[must_use]
    pub fn sites(&self) -> &[TunableSite] {
        &self.sites
    }

    /// The tunable connections, sorted by (source, sink).
    #[must_use]
    pub fn connections(&self) -> &[TunableConnection] {
        &self.connections
    }

    /// Number of tunable LUTs (occupied logic sites).
    #[must_use]
    pub fn tunable_lut_count(&self) -> usize {
        self.sites.iter().filter(|s| s.is_logic).count()
    }

    /// Number of connections realised in *every* mode (activation ≡ 1) —
    /// the connections edge matching tries to maximise.
    #[must_use]
    pub fn merged_connection_count(&self) -> usize {
        self.connections
            .iter()
            .filter(|c| c.activation.is_always(self.space))
            .count()
    }

    /// The tunable site at `site`, if occupied.
    #[must_use]
    pub fn site(&self, site: Site) -> Option<&TunableSite> {
        self.site_index.get(&site).map(|&i| &self.sites[i])
    }

    /// Generates the parameterized truth-table bits of the tunable LUT at
    /// `site` (Fig. 4): "The bits of a LUT are first multiplied (AND) with
    /// the Boolean product of the mode circuit the LUT belongs to. The
    /// corresponding bits of the different LUTs are then added (OR)".
    ///
    /// Occupant LUTs narrower than k are extended with don't-care inputs.
    /// Returns `None` for IO or unoccupied sites.
    #[must_use]
    pub fn tunable_lut_bits(&self, circuits: &[LutCircuit], site: Site) -> Option<TunableLutBits> {
        let ts = self.site(site)?;
        if !ts.is_logic {
            return None;
        }
        let entries = 1usize << self.k;
        let mut truth = vec![ModeSet::EMPTY; entries];
        let mut ff_select = ModeSet::EMPTY;
        for (m, occ) in ts.occupants.iter().enumerate() {
            let Some(id) = occ else { continue };
            let product = self.space.product(m);
            if let BlockKind::Lut {
                truth: t,
                registered,
                ..
            } = circuits[m].block(*id).kind()
            {
                let extended: TruthTable = t.extend_to(self.k);
                for (j, slot) in truth.iter_mut().enumerate() {
                    if extended.eval_index(j) {
                        *slot |= product;
                    }
                }
                if *registered {
                    ff_select |= product;
                }
            }
        }
        Some(TunableLutBits { truth, ff_select })
    }

    /// Evaluating the tunable bits for `mode` must reproduce the occupant
    /// LUT of that mode — the correctness property of Fig. 4. Returns the
    /// specialised truth table (constant-0 for modes without occupant).
    #[must_use]
    pub fn specialized_truth(
        &self,
        circuits: &[LutCircuit],
        site: Site,
        mode: usize,
    ) -> Option<TruthTable> {
        let bits = self.tunable_lut_bits(circuits, site)?;
        let mut t = TruthTable::const0(self.k);
        for (j, f) in bits.truth.iter().enumerate() {
            t.set(j, f.eval(mode));
        }
        Some(t)
    }

    /// Total parameterized LUT configuration cells over all tunable LUTs —
    /// the refined accounting of §IV-C.1 ("our results would even improve
    /// if we would count only the LUT bits that have a different value for
    /// the different modes").
    #[must_use]
    pub fn parameterized_lut_bits(&self, circuits: &[LutCircuit]) -> usize {
        self.sites
            .iter()
            .filter(|s| s.is_logic)
            .filter_map(|s| self.tunable_lut_bits(circuits, s.site))
            .map(|bits| bits.parameterized_bits(self.space))
            .sum()
    }

    /// Builds the router nets of the tunable circuit: one net per driving
    /// site, with activation-annotated sinks.
    #[must_use]
    pub fn route_nets(&self, rrg: &mm_arch::RoutingGraph) -> Vec<RouteNet> {
        let mut by_source: HashMap<Site, Vec<(Site, ModeSet)>> = HashMap::new();
        for c in &self.connections {
            by_source
                .entry(c.source)
                .or_default()
                .push((c.sink, c.activation));
        }
        let mut sources: Vec<Site> = by_source.keys().copied().collect();
        sources.sort_unstable();
        sources
            .into_iter()
            .map(|src| {
                let mut sinks = by_source.remove(&src).expect("key exists");
                sinks.sort_unstable_by_key(|&(s, _)| s);
                RouteNet {
                    name: format!("t{src}"),
                    source: rrg.source_at(src),
                    sinks: sinks
                        .into_iter()
                        .map(|(site, activation)| RouteSink {
                            node: rrg.sink_at(site),
                            activation,
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// The connections active in `mode` — the projection that must equal
    /// the placed mode circuit's connections.
    pub fn mode_connections(&self, mode: usize) -> impl Iterator<Item = &TunableConnection> {
        self.connections
            .iter()
            .filter(move |c| c.activation.contains(mode))
    }

    /// Verifies that projecting the tunable circuit on every mode yields
    /// exactly the placed connections of that mode circuit.
    ///
    /// # Errors
    ///
    /// Returns a description of the first discrepancy.
    pub fn verify_projection(
        &self,
        circuits: &[LutCircuit],
        placement: &MultiPlacement,
    ) -> Result<(), String> {
        for (m, circuit) in circuits.iter().enumerate() {
            let mut expected: Vec<(Site, Site)> = circuit
                .connections()
                .into_iter()
                .map(|(a, b)| (placement.modes[m].site_of(a), placement.modes[m].site_of(b)))
                .collect();
            expected.sort_unstable();
            expected.dedup();
            let mut got: Vec<(Site, Site)> = self
                .mode_connections(m)
                .map(|c| (c.source, c.sink))
                .collect();
            got.sort_unstable();
            if expected != got {
                return Err(format!(
                    "mode {m}: projection has {} connections, circuit has {}",
                    got.len(),
                    expected.len()
                ));
            }
        }
        Ok(())
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> TunableStats {
        TunableStats {
            modes: self.space.mode_count(),
            tunable_luts: self.tunable_lut_count(),
            io_sites: self.sites.len() - self.tunable_lut_count(),
            connections: self.connections.len(),
            merged_connections: self.merged_connection_count(),
        }
    }
}

/// Summary statistics of a [`TunableCircuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunableStats {
    /// Number of modes merged.
    pub modes: usize,
    /// Occupied logic sites.
    pub tunable_luts: usize,
    /// Occupied IO sites.
    pub io_sites: usize,
    /// Distinct tunable connections.
    pub connections: usize,
    /// Connections active in every mode.
    pub merged_connections: usize,
}

impl std::fmt::Display for TunableStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} modes, {} tunable LUTs, {} IO sites, {} connections ({} merged)",
            self.modes, self.tunable_luts, self.io_sites, self.connections, self.merged_connections
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_arch::Architecture;
    use mm_place::Placement;

    fn chain(name: &str) -> LutCircuit {
        let mut c = LutCircuit::new(name, 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1], !TruthTable::var(1, 0), true)
            .unwrap();
        c.add_output("y", g2).unwrap();
        c
    }

    fn place_pair(overlap: bool) -> (Vec<LutCircuit>, MultiPlacement, Architecture) {
        let arch = Architecture::new(4, 3, 4);
        let (a, b) = (chain("a"), chain("b"));
        let mut p0 = Placement::new(a.block_count());
        p0.assign(a.find("a").unwrap(), Site::new(0, 1, 0));
        p0.assign(a.find("g1").unwrap(), Site::new(1, 1, 0));
        p0.assign(a.find("g2").unwrap(), Site::new(2, 1, 0));
        p0.assign(a.find("y").unwrap(), Site::new(4, 1, 0));
        let mut p1 = Placement::new(b.block_count());
        if overlap {
            // Identical sites: everything merges.
            p1.assign(b.find("a").unwrap(), Site::new(0, 1, 0));
            p1.assign(b.find("g1").unwrap(), Site::new(1, 1, 0));
            p1.assign(b.find("g2").unwrap(), Site::new(2, 1, 0));
            p1.assign(b.find("y").unwrap(), Site::new(4, 1, 0));
        } else {
            p1.assign(b.find("a").unwrap(), Site::new(0, 2, 0));
            p1.assign(b.find("g1").unwrap(), Site::new(1, 2, 0));
            p1.assign(b.find("g2").unwrap(), Site::new(2, 2, 0));
            p1.assign(b.find("y").unwrap(), Site::new(4, 2, 0));
        }
        (
            vec![a, b],
            MultiPlacement {
                modes: vec![p0, p1],
            },
            arch,
        )
    }

    #[test]
    fn overlapping_placement_merges_everything() {
        let (circuits, placement, arch) = place_pair(true);
        let t = TunableCircuit::from_placement(&circuits, &placement, &arch).unwrap();
        let stats = t.stats();
        assert_eq!(stats.tunable_luts, 2);
        assert_eq!(stats.connections, 3);
        assert_eq!(stats.merged_connections, 3, "all activations ≡ 1");
        t.verify_projection(&circuits, &placement).unwrap();
    }

    #[test]
    fn disjoint_placement_merges_nothing() {
        let (circuits, placement, arch) = place_pair(false);
        let t = TunableCircuit::from_placement(&circuits, &placement, &arch).unwrap();
        let stats = t.stats();
        assert_eq!(stats.tunable_luts, 4);
        assert_eq!(stats.connections, 6);
        assert_eq!(stats.merged_connections, 0);
        t.verify_projection(&circuits, &placement).unwrap();
    }

    #[test]
    fn tunable_lut_bits_follow_fig4() {
        // Mode 0 has buffer (var), mode 1 has inverter at the same site
        // after overlapping placement of g1? g1 functions differ per mode
        // only at g2's site; check g2: mode0 = NOT(x) registered, mode1 =
        // NOT(x) registered — same. Instead check g1 (var) vs g1 (var):
        // identical → bits static. Then craft differing occupants.
        let (circuits, placement, arch) = place_pair(true);
        let t = TunableCircuit::from_placement(&circuits, &placement, &arch).unwrap();
        let space = t.space();

        let bits = t
            .tunable_lut_bits(&circuits, Site::new(1, 1, 0))
            .expect("logic site");
        // Identical occupant functions: no parameterized cells.
        assert_eq!(bits.parameterized_bits(space), 0);
        // Specialisation reproduces each mode's (extended) truth table.
        for m in 0..2 {
            let spec = t
                .specialized_truth(&circuits, Site::new(1, 1, 0), m)
                .unwrap();
            assert_eq!(spec, TruthTable::var(1, 0).extend_to(4));
        }
        // g2 carries the FF in both modes: ff_select ≡ 1.
        let bits2 = t
            .tunable_lut_bits(&circuits, Site::new(2, 1, 0))
            .expect("logic site");
        assert!(bits2.ff_select.is_always(space));
    }

    #[test]
    fn differing_occupants_are_parameterized() {
        // Craft: mode0 buffer, mode1 inverter on the same site.
        let arch = Architecture::new(4, 2, 4);
        let mut a = LutCircuit::new("a", 4);
        let ia = a.add_input("i").unwrap();
        let ga = a
            .add_lut("g", vec![ia], TruthTable::var(1, 0), false)
            .unwrap();
        a.add_output("y", ga).unwrap();
        let mut b = LutCircuit::new("b", 4);
        let ib = b.add_input("i").unwrap();
        let gb = b
            .add_lut("g", vec![ib], !TruthTable::var(1, 0), true)
            .unwrap();
        b.add_output("y", gb).unwrap();

        let mut p0 = Placement::new(a.block_count());
        p0.assign(ia, Site::new(0, 1, 0));
        p0.assign(ga, Site::new(1, 1, 0));
        p0.assign(a.find("y").unwrap(), Site::new(3, 1, 0));
        let mut p1 = Placement::new(b.block_count());
        p1.assign(ib, Site::new(0, 1, 0));
        p1.assign(gb, Site::new(1, 1, 0));
        p1.assign(b.find("y").unwrap(), Site::new(3, 1, 0));

        let circuits = vec![a, b];
        let placement = MultiPlacement {
            modes: vec![p0, p1],
        };
        let t = TunableCircuit::from_placement(&circuits, &placement, &arch).unwrap();
        let site = Site::new(1, 1, 0);
        let bits = t.tunable_lut_bits(&circuits, site).unwrap();
        let space = t.space();
        // Buffer vs inverter: every truth cell flips between modes, and
        // the FF select differs too.
        assert!(bits.truth.iter().all(|f| f.is_parameterized(space)));
        assert!(bits.ff_select.is_parameterized(space));
        assert_eq!(
            bits.parameterized_bits(space),
            (1 << 4) + 1,
            "all 17 logic-block bits are parameterized"
        );
        // Specialisations match the mode functions.
        assert_eq!(
            t.specialized_truth(&circuits, site, 0).unwrap(),
            TruthTable::var(1, 0).extend_to(4)
        );
        assert_eq!(
            t.specialized_truth(&circuits, site, 1).unwrap(),
            (!TruthTable::var(1, 0)).extend_to(4)
        );
    }

    #[test]
    fn route_nets_group_by_source() {
        let (circuits, placement, arch) = place_pair(false);
        let t = TunableCircuit::from_placement(&circuits, &placement, &arch).unwrap();
        let rrg = mm_arch::RoutingGraph::build(&arch);
        let nets = t.route_nets(&rrg);
        // Six drivers (a, g1, g2 per mode), each with one sink.
        assert_eq!(nets.len(), 6);
        for net in &nets {
            assert_eq!(net.sinks.len(), 1);
        }
        // Overlapped: three nets with merged activations.
        let (circuits, placement, arch) = place_pair(true);
        let t = TunableCircuit::from_placement(&circuits, &placement, &arch).unwrap();
        let nets = t.route_nets(&rrg);
        assert_eq!(nets.len(), 3);
        for net in &nets {
            assert!(net.sinks[0].activation.is_always(t.space()));
        }
    }

    #[test]
    fn rejects_inconsistent_input() {
        let (circuits, placement, arch) = place_pair(true);
        // Wrong mode count.
        let bad = MultiPlacement {
            modes: vec![placement.modes[0].clone()],
        };
        assert!(TunableCircuit::from_placement(&circuits, &bad, &arch).is_err());
        assert!(TunableCircuit::from_placement(&[], &placement, &arch).is_err());
    }
}
