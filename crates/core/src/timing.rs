//! Routed timing analysis — thin shims over the [`mm_sta`] crate.
//!
//! The paper evaluates wire length because it "correlates with power usage
//! and performance (maximum clock frequency) of a circuit" (§IV-C). The
//! `mm-sta` crate makes that link concrete: a levelized static timing
//! analysis over the *routed* connections (unit delay per wire segment,
//! [`LUT_DELAY`] per LUT), so the per-mode critical path of an MDR
//! implementation can be compared against the same mode inside the merged
//! tunable circuit.
//!
//! This module keeps the flow-level entry points. The N-ary
//! [`dcs_timing`] / [`mdr_timing`] functions analyze every mode and
//! propagate STA errors (a connection missing from the routing, a cyclic
//! circuit) as [`FlowError`] instead of silently defaulting delays to
//! zero or panicking, which is what the pre-`mm-sta` implementation did.

use crate::{DcsResult, FlowError, MdrResult, MultiModeInput};

/// Delay of one LUT traversal in wire-segment units (re-exported from
/// [`mm_sta`], the owner of the delay model).
pub const LUT_DELAY: f64 = mm_sta::LUT_DELAY;

/// Per-mode timing summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Longest register-to-register / pad-to-pad path delay.
    pub critical_path: f64,
    /// Mean routed delay of a connection (wires per connection).
    pub mean_connection_delay: f64,
    /// Number of circuit connections analyzed.
    pub connections: usize,
}

impl TimingReport {
    fn from_analysis(a: &mm_sta::TimingAnalysis) -> Self {
        Self {
            critical_path: a.critical_path,
            mean_connection_delay: a.mean_connection_delay(),
            connections: a.connections.len(),
        }
    }
}

/// Timing of every mode inside the merged tunable circuit of a DCS
/// result.
///
/// # Errors
///
/// Fails if the routing does not cover a mode's connections or a circuit
/// is combinationally cyclic — conditions the old implementation hid as
/// zero delays or a panic.
pub fn dcs_timing(
    input: &MultiModeInput,
    result: &DcsResult,
) -> Result<Vec<TimingReport>, FlowError> {
    let nets = result.tunable.route_nets(&result.rrg);
    input
        .circuits()
        .iter()
        .enumerate()
        .map(|(mode, circuit)| {
            let placement = &result.placement.modes[mode];
            mm_sta::analyze_routed(
                circuit,
                |b| placement.site_of(b),
                &result.rrg,
                &nets,
                &result.routing,
                mode,
            )
            .map(|a| TimingReport::from_analysis(&a))
            .map_err(|e| FlowError::Internal(format!("DCS mode '{}' STA: {e}", circuit.name())))
        })
        .collect()
}

/// Timing of every mode in its standalone MDR implementation.
///
/// # Errors
///
/// See [`dcs_timing`].
pub fn mdr_timing(
    input: &MultiModeInput,
    result: &MdrResult,
) -> Result<Vec<TimingReport>, FlowError> {
    input
        .circuits()
        .iter()
        .enumerate()
        .map(|(mode, circuit)| {
            let placement = &result.placements[mode];
            let nets = mm_route::nets_for_circuit(
                circuit,
                &result.rrg,
                mm_boolexpr::ModeSet::single(0),
                |b| placement.site_of(b),
            );
            mm_sta::analyze_routed(
                circuit,
                |b| placement.site_of(b),
                &result.rrg,
                &nets,
                &result.routings[mode],
                0,
            )
            .map(|a| TimingReport::from_analysis(&a))
            .map_err(|e| FlowError::Internal(format!("MDR mode '{}' STA: {e}", circuit.name())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcsFlow, FlowOptions, MdrFlow};
    use mm_netlist::{LutCircuit, TruthTable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = LutCircuit::new(name, 4);
        let mut drivers: Vec<mm_netlist::BlockId> = (0..n_inputs)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        for j in 0..n_luts {
            let fanin = rng.gen_range(2..=4.min(drivers.len()));
            let mut ins = Vec::new();
            while ins.len() < fanin {
                let d = drivers[rng.gen_range(0..drivers.len())];
                if !ins.contains(&d) {
                    ins.push(d);
                }
            }
            let tt = TruthTable::from_bits(ins.len(), rng.gen());
            let id = c
                .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
                .unwrap();
            drivers.push(id);
        }
        for t in 0..3 {
            let d = drivers[drivers.len() - 1 - t];
            c.add_output(format!("o{t}"), d).unwrap();
        }
        c
    }

    #[test]
    fn timing_reports_are_plausible() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 5, 18, 61),
            random_circuit("m1", 5, 20, 62),
        ])
        .unwrap();
        let mut options = FlowOptions::default();
        options.placer.inner_num = 1.0;
        let mdr = MdrFlow::new(options).run(&input).unwrap();
        let dcs = DcsFlow::new(options).run(&input).unwrap();

        let mdr_reports = mdr_timing(&input, &mdr).unwrap();
        let dcs_reports = dcs_timing(&input, &dcs).unwrap();
        for mode in 0..2 {
            let tm = mdr_reports[mode];
            let td = dcs_reports[mode];
            assert!(tm.critical_path >= LUT_DELAY, "mode {mode}: {tm:?}");
            assert!(td.critical_path >= LUT_DELAY, "mode {mode}: {td:?}");
            assert!(tm.connections > 0);
            assert_eq!(
                td.connections, tm.connections,
                "same circuit, same connection count"
            );
            assert!(tm.mean_connection_delay > 0.0);
            // The merged implementation pays a bounded latency penalty —
            // the timing analogue of the paper's bounded wire overhead.
            assert!(
                td.critical_path <= tm.critical_path * 3.0,
                "mode {mode}: DCS {td:?} vs MDR {tm:?}"
            );
        }
    }

    #[test]
    fn combinational_depth_contributes() {
        // A 3-LUT chain must have critical path ≥ 3 LUT delays.
        let mut c = LutCircuit::new("chain", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1], TruthTable::var(1, 0), false)
            .unwrap();
        let g3 = c
            .add_lut("g3", vec![g2], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g3).unwrap();
        let input = MultiModeInput::new(vec![c]).unwrap();
        let mut options = FlowOptions::default();
        options.placer.inner_num = 1.0;
        let mdr = MdrFlow::new(options).run(&input).unwrap();
        let t = mdr_timing(&input, &mdr).unwrap()[0];
        assert!(t.critical_path >= 3.0 * LUT_DELAY);
    }

    #[test]
    fn dcs_critical_paths_match_timing_reports() {
        // `DcsResult::critical_paths` (what timing jobs record) and the
        // flow-level reports are the same analysis.
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 5, 14, 91),
            random_circuit("m1", 5, 16, 92),
        ])
        .unwrap();
        let mut options = FlowOptions::default();
        options.placer.inner_num = 1.0;
        let dcs = DcsFlow::new(options).run(&input).unwrap();
        let cps = dcs.critical_paths(input.circuits()).unwrap();
        let reports = dcs_timing(&input, &dcs).unwrap();
        assert_eq!(cps.len(), reports.len());
        for (cp, r) in cps.iter().zip(&reports) {
            assert_eq!(cp.to_bits(), r.critical_path.to_bits());
        }
    }
}
