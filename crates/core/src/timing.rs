//! Routed timing analysis.
//!
//! The paper evaluates wire length because it "correlates with power usage
//! and performance (maximum clock frequency) of a circuit" (§IV-C). This
//! module makes that link concrete: a unit-delay static timing analysis
//! over the *routed* connections, so the per-mode critical path of an MDR
//! implementation can be compared against the same mode inside the merged
//! tunable circuit.
//!
//! Delay model: every wire segment costs 1 unit, every LUT costs
//! [`LUT_DELAY`] units; paths start at input pads and register outputs and
//! end at register data inputs and output pads.

use crate::{DcsResult, MdrResult, MultiModeInput};
use mm_arch::RrNodeId;
use mm_netlist::{BlockKind, LutCircuit};
use mm_route::{RouteNet, Routing};
use std::collections::HashMap;

/// Delay of one LUT traversal in wire-segment units.
pub const LUT_DELAY: f64 = 2.0;

/// Per-mode timing summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Longest register-to-register / pad-to-pad path delay.
    pub critical_path: f64,
    /// Mean routed delay of a connection (wires per connection).
    pub mean_connection_delay: f64,
    /// Number of routed connections considered.
    pub connections: usize,
}

/// Builds the routed-delay lookup `(source node, sink node) → wires` for
/// the connections of `mode`.
fn delay_map(
    rrg: &mm_arch::RoutingGraph,
    nets: &[RouteNet],
    routing: &Routing,
    mode: usize,
) -> HashMap<(RrNodeId, RrNodeId), f64> {
    let mut map = HashMap::new();
    for (net, route) in nets.iter().zip(&routing.nets) {
        for (si, sink) in net.sinks.iter().enumerate() {
            if sink.activation.contains(mode) {
                let wires = route.wires_to_sink(rrg, si) as f64;
                map.insert((net.source, sink.node), wires);
            }
        }
    }
    map
}

/// Unit-delay STA over one mode circuit given its placement and routed
/// delays.
fn analyze(
    circuit: &LutCircuit,
    site_of: impl Fn(mm_netlist::BlockId) -> mm_arch::Site,
    rrg: &mm_arch::RoutingGraph,
    delays: &HashMap<(RrNodeId, RrNodeId), f64>,
) -> TimingReport {
    let conn_delay = |src: mm_netlist::BlockId, dst: mm_netlist::BlockId| -> f64 {
        let key = (rrg.source_at(site_of(src)), rrg.sink_at(site_of(dst)));
        delays.get(&key).copied().unwrap_or(0.0)
    };

    // Arrival times: sources (input pads, registered LUT outputs) at 0.
    let mut arrival: HashMap<mm_netlist::BlockId, f64> = HashMap::new();
    let order = circuit
        .comb_topo_order()
        .expect("flow circuits are validated");
    let arrival_of = |arrival: &HashMap<mm_netlist::BlockId, f64>,
                      id: mm_netlist::BlockId|
     -> f64 { arrival.get(&id).copied().unwrap_or(0.0) };

    let mut critical = 0.0f64;
    for id in order {
        let at = circuit
            .block(id)
            .fanin()
            .iter()
            .map(|&d| arrival_of(&arrival, d) + conn_delay(d, id))
            .fold(0.0f64, f64::max)
            + LUT_DELAY;
        critical = critical.max(at);
        arrival.insert(id, at);
    }
    // Endpoints: registered LUT data inputs and output pads.
    for id in circuit.block_ids() {
        match circuit.block(id).kind() {
            BlockKind::Lut {
                registered: true, ..
            } => {
                let at = circuit
                    .block(id)
                    .fanin()
                    .iter()
                    .map(|&d| arrival_of(&arrival, d) + conn_delay(d, id))
                    .fold(0.0f64, f64::max)
                    + LUT_DELAY;
                critical = critical.max(at);
            }
            BlockKind::OutputPad { source, .. } => {
                let at = arrival_of(&arrival, *source) + conn_delay(*source, id);
                critical = critical.max(at);
            }
            _ => {}
        }
    }

    let total: f64 = delays.values().sum();
    TimingReport {
        critical_path: critical,
        mean_connection_delay: if delays.is_empty() {
            0.0
        } else {
            total / delays.len() as f64
        },
        connections: delays.len(),
    }
}

/// Timing of `mode` inside the merged tunable circuit of a DCS result.
///
/// # Panics
///
/// Panics if `mode` is out of range for the input.
#[must_use]
pub fn dcs_mode_timing(input: &MultiModeInput, result: &DcsResult, mode: usize) -> TimingReport {
    assert!(mode < input.mode_count(), "mode out of range");
    let nets = result.tunable.route_nets(&result.rrg);
    let delays = delay_map(&result.rrg, &nets, &result.routing, mode);
    let circuit = &input.circuits()[mode];
    analyze(
        circuit,
        |b| result.placement.modes[mode].site_of(b),
        &result.rrg,
        &delays,
    )
}

/// Timing of `mode` in its standalone MDR implementation.
///
/// # Panics
///
/// Panics if `mode` is out of range for the input.
#[must_use]
pub fn mdr_mode_timing(input: &MultiModeInput, result: &MdrResult, mode: usize) -> TimingReport {
    assert!(mode < input.mode_count(), "mode out of range");
    let circuit = &input.circuits()[mode];
    let placement = &result.placements[mode];
    let nets =
        mm_route::nets_for_circuit(circuit, &result.rrg, mm_boolexpr::ModeSet::single(0), |b| {
            placement.site_of(b)
        });
    let delays = delay_map(&result.rrg, &nets, &result.routings[mode], 0);
    analyze(circuit, |b| placement.site_of(b), &result.rrg, &delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcsFlow, FlowOptions, MdrFlow};
    use mm_netlist::TruthTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = LutCircuit::new(name, 4);
        let mut drivers: Vec<mm_netlist::BlockId> = (0..n_inputs)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        for j in 0..n_luts {
            let fanin = rng.gen_range(2..=4.min(drivers.len()));
            let mut ins = Vec::new();
            while ins.len() < fanin {
                let d = drivers[rng.gen_range(0..drivers.len())];
                if !ins.contains(&d) {
                    ins.push(d);
                }
            }
            let tt = TruthTable::from_bits(ins.len(), rng.gen());
            let id = c
                .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
                .unwrap();
            drivers.push(id);
        }
        for t in 0..3 {
            let d = drivers[drivers.len() - 1 - t];
            c.add_output(format!("o{t}"), d).unwrap();
        }
        c
    }

    #[test]
    fn timing_reports_are_plausible() {
        let input = MultiModeInput::new(vec![
            random_circuit("m0", 5, 18, 61),
            random_circuit("m1", 5, 20, 62),
        ])
        .unwrap();
        let mut options = FlowOptions::default();
        options.placer.inner_num = 1.0;
        let mdr = MdrFlow::new(options).run(&input).unwrap();
        let dcs = DcsFlow::new(options).run(&input).unwrap();

        for mode in 0..2 {
            let tm = mdr_mode_timing(&input, &mdr, mode);
            let td = dcs_mode_timing(&input, &dcs, mode);
            assert!(tm.critical_path >= LUT_DELAY, "mode {mode}: {tm:?}");
            assert!(td.critical_path >= LUT_DELAY, "mode {mode}: {td:?}");
            assert!(tm.connections > 0);
            assert_eq!(
                td.connections, tm.connections,
                "same circuit, same connection count"
            );
            assert!(tm.mean_connection_delay > 0.0);
            // The merged implementation pays a bounded latency penalty —
            // the timing analogue of the paper's bounded wire overhead.
            assert!(
                td.critical_path <= tm.critical_path * 3.0,
                "mode {mode}: DCS {td:?} vs MDR {tm:?}"
            );
        }
    }

    #[test]
    fn combinational_depth_contributes() {
        // A 3-LUT chain must have critical path ≥ 3 LUT delays.
        let mut c = LutCircuit::new("chain", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1], TruthTable::var(1, 0), false)
            .unwrap();
        let g3 = c
            .add_lut("g3", vec![g2], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g3).unwrap();
        let input = MultiModeInput::new(vec![c]).unwrap();
        let mut options = FlowOptions::default();
        options.placer.inner_num = 1.0;
        let mdr = MdrFlow::new(options).run(&input).unwrap();
        let t = mdr_mode_timing(&input, &mdr, 0);
        assert!(t.critical_path >= 3.0 * LUT_DELAY);
    }
}
