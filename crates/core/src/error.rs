//! Flow-level error type.

use std::error::Error;
use std::fmt;

/// Errors of the multi-mode tool flow.
#[derive(Debug)]
pub enum FlowError {
    /// The input (mode circuits, placement) is malformed.
    Input(String),
    /// Placement failed.
    Place(mm_place::PlaceError),
    /// The design did not route within the allowed channel width.
    Unroutable {
        /// The maximum width attempted.
        max_width: usize,
        /// What was being routed.
        context: String,
    },
    /// Sinks no path can reach at all — hard unreachability, not
    /// congestion. Wider channels replicate the same connectivity
    /// pattern, so the route stage fails fast instead of burning its
    /// width-growth retries.
    UnreachableSinks {
        /// What was being routed.
        context: String,
        /// Names of the nets with unreachable sinks.
        nets: Vec<String>,
    },
    /// Internal invariant violated (verification failed).
    Internal(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Input(msg) => write!(f, "invalid flow input: {msg}"),
            FlowError::Place(e) => write!(f, "placement failed: {e}"),
            FlowError::Unroutable { max_width, context } => {
                write!(f, "{context} unroutable within channel width {max_width}")
            }
            FlowError::UnreachableSinks { context, nets } => {
                write!(
                    f,
                    "{context}: sinks of nets [{}] are unreachable at any channel width",
                    nets.join(", ")
                )
            }
            FlowError::Internal(msg) => write!(f, "internal flow error: {msg}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Place(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mm_place::PlaceError> for FlowError {
    fn from(e: mm_place::PlaceError) -> Self {
        FlowError::Place(e)
    }
}
