//! A small work-stealing thread pool for coarse-grained jobs.
//!
//! Each worker owns a deque seeded round-robin; it pops locally from the
//! front and, when empty, steals from the *back* of a sibling — the
//! classic split that keeps contention off the hot path. Results are
//! delivered two ways: positionally (the returned `Vec` is in input
//! order) and through an in-order streaming callback, which is what lets
//! `mmflow batch` emit JSONL records deterministically while jobs finish
//! out of order.
//!
//! With `threads == 1` everything runs inline on the caller's thread in
//! input order — the reference schedule the determinism guarantee is
//! stated against.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `f` over `items` on `threads` workers.
///
/// Returns the results in input order. `on_done(index, &result)` is
/// invoked for every item **in input order** (a reorder buffer holds
/// early finishers), regardless of which worker computed it.
///
/// # Panics
///
/// Propagates panics from `f` after the scope unwinds.
pub fn run_ordered<T, R, F, C>(items: Vec<T>, threads: usize, f: F, on_done: C) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    C: FnMut(usize, &R) + Send,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    let emitter = Mutex::new(Emitter { next: 0, on_done });

    if threads == 1 {
        // The reference schedule: strictly sequential, in input order.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(i, item);
                emitter.lock().expect("emitter lock").emit(i, &r);
                r
            })
            .collect();
    }

    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % threads]
            .lock()
            .expect("queue lock")
            .push_back((i, item));
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let queues = &queues;
        let slots = &slots;
        let emitter = &emitter;
        let f = &f;
        for me in 0..threads {
            scope.spawn(move || loop {
                let task = pop_or_steal(queues, me);
                let Some((index, item)) = task else { break };
                let result = f(index, item);
                *slots[index].lock().expect("slot lock") = Some(result);
                let mut em = emitter.lock().expect("emitter lock");
                em.drain(slots);
            });
        }
    });

    let results: Vec<R> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("all jobs completed")
        })
        .collect();
    results
}

fn pop_or_steal<T>(queues: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<(usize, T)> {
    if let Some(task) = queues[me].lock().expect("queue lock").pop_front() {
        return Some(task);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(task) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(task);
        }
    }
    None
}

struct Emitter<C> {
    next: usize,
    on_done: C,
}

impl<C> Emitter<C> {
    fn emit<R>(&mut self, index: usize, result: &R)
    where
        C: FnMut(usize, &R),
    {
        debug_assert_eq!(index, self.next, "sequential emit out of order");
        (self.on_done)(index, result);
        self.next += 1;
    }

    fn drain<R>(&mut self, slots: &[Mutex<Option<R>>])
    where
        C: FnMut(usize, &R),
    {
        while self.next < slots.len() {
            let slot = slots[self.next].lock().expect("slot lock");
            let Some(result) = slot.as_ref() else { break };
            (self.on_done)(self.next, result);
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_in_results() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_ordered(items, 4, |_, x| x * 2, |_, _| {});
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn streams_in_order_despite_parallelism() {
        let items: Vec<usize> = (0..64).collect();
        let seen = Mutex::new(Vec::new());
        run_ordered(
            items,
            8,
            |i, x| {
                // Earlier jobs sleep longer: maximal reordering pressure.
                std::thread::sleep(std::time::Duration::from_millis(((64 - i) % 7) as u64));
                x
            },
            |i, &r| {
                assert_eq!(i, r);
                seen.lock().unwrap().push(i);
            },
        );
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen, (0..64).collect::<Vec<_>>(), "callback order");
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        let out = run_ordered(
            vec![1, 2, 3],
            1,
            move |_, x| {
                assert_eq!(std::thread::current().id(), tid);
                x + 1
            },
            |_, _| {},
        );
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn work_is_actually_distributed() {
        // With blocking jobs and as many threads as jobs, every job must
        // run concurrently — otherwise this deadlocks the barrier.
        let n = 4;
        let barrier = std::sync::Barrier::new(n);
        let count = AtomicUsize::new(0);
        run_ordered(
            (0..n).collect(),
            n,
            |_, _| {
                barrier.wait();
                count.fetch_add(1, Ordering::SeqCst);
            },
            |_, _| {},
        );
        assert_eq!(count.load(Ordering::SeqCst), n);
    }

    #[test]
    fn empty_and_single_item() {
        let out: Vec<usize> = run_ordered(Vec::<usize>::new(), 4, |_, x| x, |_, _| {});
        assert!(out.is_empty());
        let out = run_ordered(vec![9], 4, |_, x| x, |_, _| {});
        assert_eq!(out, vec![9]);
    }
}
