//! The multi-mode tool flow — the paper's primary contribution.
//!
//! "In this paper we present a new, fully automated flow that exploits
//! similarities between the modes and uses Dynamic Circuit Specialization
//! to reduce reconfiguration time."
//!
//! The flow (paper Fig. 2b) merges per-mode LUT circuits into one
//! [`TunableCircuit`] via combined placement (`mm-place`), routes it with
//! a mode-aware connection router (`mm-route`) and derives a parameterized
//! configuration (`mm-bitstream`) in which only a small number of routing
//! bits depend on the mode.
//!
//! * [`MultiModeInput`] — the validated per-mode circuits.
//! * [`MdrFlow`] — the Modular Dynamic Reconfiguration baseline.
//! * [`DcsFlow`] — the paper's flow (wire-length or edge-matching
//!   combined placement).
//! * [`run_combined_n`] — the full experimental comparison on a shared
//!   fabric for **any mode count**, producing the measurements behind
//!   Figures 5–7; [`run_pair`] is its historical N = 2-era wrapper
//!   (byte-identical output by construction).
//!
//! # Example
//!
//! ```no_run
//! use mm_flow::{DcsFlow, FlowOptions, MultiModeInput};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let modes = mm_gen::regexp_suite(4);
//! let input = MultiModeInput::new(vec![modes[0].clone(), modes[1].clone()])?;
//! let result = DcsFlow::new(FlowOptions::default()).run(&input)?;
//! println!(
//!     "parameterized routing bits: {} (of {})",
//!     result.parameterized_routing_bits(),
//!     result.model.routing_bits
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod experiment;
mod flow;
pub mod pool;
pub mod report;
pub mod stage;
pub mod timing;
mod tunable;

pub use error::FlowError;
pub use experiment::{
    place_combined_n, place_pair, run_combined_n, run_combined_with_placements, run_pair,
    run_pair_with_placements, CombinedMetrics, CombinedPlacements, PairMetrics, PairPlacements,
};
pub use flow::{DcsFlow, DcsResult, FlowOptions, MdrFlow, MdrResult, MultiModeInput, WidthChoice};
pub use report::Stats;
pub use stage::{DcsSummary, MdrSummary};
pub use timing::{dcs_timing, mdr_timing, TimingReport, LUT_DELAY};
pub use tunable::{TunableCircuit, TunableConnection, TunableLutBits, TunableSite, TunableStats};

// The batch engine fans jobs out across threads; every type that crosses
// a job boundary must be `Send + Sync`. Assert it at compile time so a
// future `Rc`/`RefCell` regression fails here, with a readable error,
// rather than deep inside the engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MultiModeInput>();
    assert_send_sync::<FlowOptions>();
    assert_send_sync::<DcsFlow>();
    assert_send_sync::<MdrFlow>();
    assert_send_sync::<DcsResult>();
    assert_send_sync::<MdrResult>();
    assert_send_sync::<CombinedMetrics>();
    assert_send_sync::<CombinedPlacements>();
    assert_send_sync::<TunableCircuit>();
    assert_send_sync::<FlowError>();
    assert_send_sync::<stage::Artifact>();
    assert_send_sync::<stage::StagePlan>();
    assert_send_sync::<stage::StageTiming>();
};
