//! Priority-cut technology mapping from AIGs to k-LUT circuits.
//!
//! The mapper follows the classic depth-oriented priority-cuts scheme
//! (Mishchenko et al.): enumerate up to [`MapOptions::cut_limit`] cuts per
//! AND node, rank by (depth, area flow), select the best cut per node, and
//! extract the cover backwards from the roots. Flip-flops are absorbed
//! into the logic block of their driving LUT when that LUT has no other
//! fanout — mirroring VPack's packing for the paper's one-LUT-one-FF logic
//! block.

use crate::aig::{Aig, AigLit, AigNode};
use crate::cuts::{prune_dominated, Cut};
use mm_netlist::{BlockId, LutCircuit, NetlistError, TruthTable};
use std::collections::HashMap;

/// Options controlling technology mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapOptions {
    /// LUT input count of the target architecture.
    pub k: usize,
    /// Priority cuts kept per node.
    pub cut_limit: usize,
}

impl Default for MapOptions {
    /// Defaults to 4-LUTs (the paper's `4lut_sanitized.arch`) with 8
    /// priority cuts.
    fn default() -> Self {
        Self { k: 4, cut_limit: 8 }
    }
}

impl MapOptions {
    /// Options for k-input LUTs with the default cut limit.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `2..=6`.
    #[must_use]
    pub fn for_k(k: usize) -> Self {
        assert!((2..=6).contains(&k), "k must be in 2..=6");
        Self { k, cut_limit: 8 }
    }
}

/// Per-node mapping state.
struct NodeInfo {
    /// Non-trivial priority cuts, best first (empty for sources).
    cuts: Vec<Cut>,
    /// Depth of the best cut (sources: 0).
    arrival: u32,
    /// Area-flow estimate of the best cut.
    area_flow: f64,
}

/// Maps an AIG onto a circuit of k-input LUT logic blocks.
///
/// # Errors
///
/// Fails only on internal netlist violations (which would indicate a bug);
/// the mapper accepts any well-formed AIG.
///
/// # Example
///
/// ```
/// use mm_synth::{Aig, map_aig, MapOptions};
///
/// # fn main() -> Result<(), mm_netlist::NetlistError> {
/// let mut g = Aig::new("and3");
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let c = g.add_input("c");
/// let ab = g.and(a, b);
/// let abc = g.and(ab, c);
/// g.add_output("y", abc);
/// let mapped = map_aig(&g, MapOptions::default())?;
/// assert_eq!(mapped.lut_count(), 1); // fits one 4-LUT
/// # Ok(())
/// # }
/// ```
pub fn map_aig(aig: &Aig, options: MapOptions) -> Result<LutCircuit, NetlistError> {
    let k = options.k;
    let n = aig.node_count();

    // ---- structural refs ----------------------------------------------
    let mut refs = vec![0u32; n];
    for i in 0..n {
        if let AigNode::And(a, b) = aig.node(i as u32) {
            refs[a.node() as usize] += 1;
            refs[b.node() as usize] += 1;
        }
    }
    for (_, lit) in aig.outputs() {
        refs[lit.node() as usize] += 1;
    }
    for latch in aig.latches() {
        refs[latch.input.node() as usize] += 1;
    }

    // ---- cut enumeration + best-cut costs ------------------------------
    let mut info: Vec<NodeInfo> = Vec::with_capacity(n);
    // Index-driven on purpose: the body reads `info[..i]` while pushing
    // entry `i`, which an iterator over `info` cannot express.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let node = aig.node(i as u32);
        let ni = match node {
            AigNode::Const | AigNode::Input | AigNode::Latch => NodeInfo {
                cuts: Vec::new(),
                arrival: 0,
                area_flow: 0.0,
            },
            AigNode::And(a, b) => {
                let (an, bn) = (a.node() as usize, b.node() as usize);
                let mut candidates: Vec<Cut> = Vec::new();
                let a_cuts = cuts_with_trivial(&info[an], a.node());
                let b_cuts = cuts_with_trivial(&info[bn], b.node());
                for ca in &a_cuts {
                    for cb in &b_cuts {
                        if let Some(m) = ca.merge(cb, k) {
                            candidates.push(m);
                        }
                    }
                }
                prune_dominated(&mut candidates);
                // Rank by (depth, area flow, size).
                let mut ranked: Vec<(u32, f64, Cut)> = candidates
                    .into_iter()
                    .map(|c| {
                        let depth = 1 + c
                            .leaves()
                            .iter()
                            .map(|&l| info[l as usize].arrival)
                            .max()
                            .unwrap_or(0);
                        let af: f64 = 1.0
                            + c.leaves()
                                .iter()
                                .map(|&l| info[l as usize].area_flow)
                                .sum::<f64>();
                        (depth, af, c)
                    })
                    .collect();
                ranked.sort_by(|x, y| {
                    x.0.cmp(&y.0)
                        .then(x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))
                        .then(x.2.len().cmp(&y.2.len()))
                });
                ranked.truncate(options.cut_limit);
                let best = ranked.first().expect("an AND node always has cuts");
                let fanout = refs[i].max(1) as f64;
                NodeInfo {
                    arrival: best.0,
                    area_flow: best.1 / fanout,
                    cuts: ranked.into_iter().map(|(_, _, c)| c).collect(),
                }
            }
        };
        info.push(ni);
    }

    // ---- cover selection ------------------------------------------------
    // required[i] = node i must be implemented as a LUT root.
    let mut required = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let push_root = |lit: AigLit, stack: &mut Vec<u32>| {
        if matches!(aig.node(lit.node()), AigNode::And(..)) {
            stack.push(lit.node());
        }
    };
    for (_, lit) in aig.outputs() {
        push_root(*lit, &mut stack);
    }
    for latch in aig.latches() {
        push_root(latch.input, &mut stack);
    }
    while let Some(node) = stack.pop() {
        if required[node as usize] {
            continue;
        }
        required[node as usize] = true;
        let best = info[node as usize].cuts[0];
        for &leaf in best.leaves() {
            if matches!(aig.node(leaf), AigNode::And(..)) && !required[leaf as usize] {
                stack.push(leaf);
            }
        }
    }

    // ---- use analysis of required roots ---------------------------------
    // Leaf uses (as LUT inputs of other roots) always reference the node's
    // positive function; port uses (outputs, latch data) carry a polarity.
    let mut leaf_uses = vec![0u32; n];
    for i in 0..n {
        if required[i] {
            for &leaf in info[i].cuts[0].leaves() {
                leaf_uses[leaf as usize] += 1;
            }
        }
    }
    let mut port_uses_pos = vec![0u32; n];
    let mut port_uses_neg = vec![0u32; n];
    for (_, lit) in aig.outputs() {
        if lit.is_complemented() {
            port_uses_neg[lit.node() as usize] += 1;
        } else {
            port_uses_pos[lit.node() as usize] += 1;
        }
    }
    for latch in aig.latches() {
        if latch.input.is_complemented() {
            port_uses_neg[latch.input.node() as usize] += 1;
        } else {
            port_uses_pos[latch.input.node() as usize] += 1;
        }
    }

    // Polarity canonicalisation: a root never used as a leaf and only used
    // complemented implements the complemented function directly, saving an
    // inverter LUT.
    let mut flipped = vec![false; n];
    for i in 0..n {
        if required[i] && leaf_uses[i] == 0 && port_uses_pos[i] == 0 && port_uses_neg[i] > 0 {
            flipped[i] = true;
        }
    }

    // FF absorption: a root is absorbable into a latch when its *only* use
    // is that latch's data input (any polarity — it folds into the truth
    // table).
    let mut absorbed: HashMap<u32, usize> = HashMap::new(); // root → latch index
    for (li, latch) in aig.latches().iter().enumerate() {
        let root = latch.input.node() as usize;
        if matches!(aig.node(root as u32), AigNode::And(..))
            && required[root]
            && leaf_uses[root] == 0
            && port_uses_pos[root] + port_uses_neg[root] == 1
        {
            absorbed.insert(root as u32, li);
        }
    }

    // ---- netlist construction ------------------------------------------
    let mut circuit = LutCircuit::new(aig.name().to_string(), k);
    let mut block_of: HashMap<u32, BlockId> = HashMap::new();

    for (name, node) in aig.inputs() {
        let id = circuit.add_input(name.clone())?;
        block_of.insert(*node, id);
    }
    // Latch blocks first (placeholders) so feedback resolves.
    let placeholder = TruthTable::const0(0);
    let mut latch_blocks: Vec<BlockId> = Vec::with_capacity(aig.latches().len());
    for latch in aig.latches() {
        let id = circuit.add_lut(latch.name.clone(), vec![], placeholder, true)?;
        circuit.set_init(id, latch.init)?;
        block_of.insert(latch.node, id);
        latch_blocks.push(id);
    }

    // Emit combinational LUTs for required, non-absorbed roots in topo
    // (index) order.
    for i in 0..n {
        if !required[i] || absorbed.contains_key(&(i as u32)) {
            continue;
        }
        let cut = info[i].cuts[0];
        let mut truth = cut_truth(aig, i as u32, cut.leaves());
        if flipped[i] {
            truth = !truth;
        }
        let fanin: Vec<BlockId> = cut.leaves().iter().map(|l| block_of[l]).collect();
        let id = circuit.add_lut(format!("n{i}"), fanin, truth, false)?;
        block_of.insert(i as u32, id);
    }

    // Patch latch blocks.
    for (li, latch) in aig.latches().iter().enumerate() {
        let lit = latch.input;
        let root = lit.node();
        let block = latch_blocks[li];
        if let Some(&ali) = absorbed.get(&root) {
            debug_assert_eq!(ali, li);
            let cut = info[root as usize].cuts[0];
            let mut truth = cut_truth(aig, root, cut.leaves());
            if lit.is_complemented() {
                truth = !truth;
            }
            let fanin: Vec<BlockId> = cut.leaves().iter().map(|l| block_of[l]).collect();
            circuit.set_lut(block, fanin, truth)?;
        } else if lit.is_const() {
            let truth = if lit == AigLit::TRUE {
                TruthTable::const1(0)
            } else {
                TruthTable::const0(0)
            };
            circuit.set_lut(block, vec![], truth)?;
        } else {
            // Pass-through (possibly inverting) registered LUT.
            let src = block_of[&root];
            let effective_compl = lit.is_complemented() ^ flipped[root as usize];
            let truth = if effective_compl {
                !TruthTable::var(1, 0)
            } else {
                TruthTable::var(1, 0)
            };
            circuit.set_lut(block, vec![src], truth)?;
        }
    }

    // Primary outputs.
    let mut inverter_of: HashMap<u32, BlockId> = HashMap::new();
    let mut const_block: HashMap<bool, BlockId> = HashMap::new();
    for (name, lit) in aig.outputs() {
        let source = if lit.is_const() {
            let value = *lit == AigLit::TRUE;
            match const_block.get(&value) {
                Some(&b) => b,
                None => {
                    let truth = if value {
                        TruthTable::const1(0)
                    } else {
                        TruthTable::const0(0)
                    };
                    let b = circuit.add_lut(
                        format!("const{}", u8::from(value)),
                        vec![],
                        truth,
                        false,
                    )?;
                    const_block.insert(value, b);
                    b
                }
            }
        } else if lit.is_complemented() ^ flipped[lit.node() as usize] {
            let root = lit.node();
            match inverter_of.get(&root) {
                Some(&b) => b,
                None => {
                    let src = block_of[&root];
                    let b = circuit.add_lut(
                        format!("n{root}_inv"),
                        vec![src],
                        !TruthTable::var(1, 0),
                        false,
                    )?;
                    inverter_of.insert(root, b);
                    b
                }
            }
        } else {
            block_of[&lit.node()]
        };
        let pad_name = if circuit.find(name).is_none() {
            name.clone()
        } else {
            format!("{name}$pad")
        };
        circuit.add_output_port(pad_name, name.clone(), source)?;
    }

    circuit.validate()?;
    Ok(circuit)
}

fn cuts_with_trivial(info: &NodeInfo, node: u32) -> Vec<Cut> {
    let mut v = info.cuts.clone();
    v.push(Cut::trivial(node));
    v
}

/// Computes the truth table of `root` as a function of the cut `leaves`.
fn cut_truth(aig: &Aig, root: u32, leaves: &[u32]) -> TruthTable {
    let k = leaves.len();
    let mut memo: HashMap<u32, TruthTable> = leaves
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, TruthTable::var(k, i)))
        .collect();
    truth_rec(aig, root, k, &mut memo)
}

fn truth_rec(aig: &Aig, node: u32, k: usize, memo: &mut HashMap<u32, TruthTable>) -> TruthTable {
    if let Some(&t) = memo.get(&node) {
        return t;
    }
    let t = match aig.node(node) {
        AigNode::Const => TruthTable::const0(k),
        AigNode::Input | AigNode::Latch => {
            unreachable!("cut leaves cover all sources (node {node})")
        }
        AigNode::And(a, b) => {
            let ta = truth_rec(aig, a.node(), k, memo);
            let ta = if a.is_complemented() { !ta } else { ta };
            let tb = truth_rec(aig, b.node(), k, memo);
            let tb = if b.is_complemented() { !tb } else { tb };
            ta & tb
        }
    };
    memo.insert(node, t);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::AigSimulator;
    use mm_netlist::LutSimulator;

    /// Steps both simulators over pseudo-random stimulus and asserts
    /// identical outputs.
    fn assert_equivalent(aig: &Aig, circuit: &LutCircuit, cycles: usize, seed: u64) {
        let mut asim = AigSimulator::new(aig);
        let mut lsim = LutSimulator::new(circuit).expect("valid circuit");
        let n_in = aig.inputs().len();
        let mut state = seed | 1;
        let mut next_bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        for cycle in 0..cycles {
            let ins: Vec<bool> = (0..n_in).map(|_| next_bit()).collect();
            assert_eq!(asim.step(&ins), lsim.step(&ins), "cycle {cycle}");
        }
    }

    #[test]
    fn map_wide_and_tree() {
        let mut g = Aig::new("and8");
        let ins: Vec<AigLit> = (0..8).map(|i| g.add_input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &l in &ins[1..] {
            acc = g.and(acc, l);
        }
        g.add_output("y", acc);
        let c = map_aig(&g, MapOptions::default()).unwrap();
        // 8-input AND needs at least ceil(7/3) = 3 4-LUTs.
        assert!(c.lut_count() <= 4, "got {} LUTs", c.lut_count());
        assert!(c.lut_count() >= 3);
        assert_equivalent(&g, &c, 64, 11);
    }

    #[test]
    fn map_xor_chain() {
        let mut g = Aig::new("parity6");
        let ins: Vec<AigLit> = (0..6).map(|i| g.add_input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &l in &ins[1..] {
            acc = g.xor(acc, l);
        }
        g.add_output("p", acc);
        let c = map_aig(&g, MapOptions::default()).unwrap();
        assert_equivalent(&g, &c, 128, 5);
        // Parity of 6 fits in two 4-LUTs... plus possibly one combiner.
        assert!(c.lut_count() <= 3, "got {}", c.lut_count());
    }

    #[test]
    fn map_complemented_output() {
        let mut g = Aig::new("nand");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let x = g.and(a, b);
        g.add_output("y", !x);
        g.add_output("z", x); // both polarities used
        let c = map_aig(&g, MapOptions::default()).unwrap();
        assert_equivalent(&g, &c, 32, 3);
    }

    #[test]
    fn map_constant_and_wire_outputs() {
        let mut g = Aig::new("wires");
        let a = g.add_input("a");
        g.add_output("t", AigLit::TRUE);
        g.add_output("f", AigLit::FALSE);
        g.add_output("w", a);
        g.add_output("nw", !a);
        let c = map_aig(&g, MapOptions::default()).unwrap();
        assert_equivalent(&g, &c, 16, 9);
    }

    #[test]
    fn map_sequential_with_absorption() {
        // q' = q ^ en — the XOR LUT should absorb the flip-flop.
        let mut g = Aig::new("acc");
        let en = g.add_input("en");
        let q = g.add_latch("q", false);
        let nxt = g.xor(q, en);
        g.connect_latch(q, nxt).unwrap();
        g.add_output("q", q);
        let c = map_aig(&g, MapOptions::default()).unwrap();
        assert_eq!(c.lut_count(), 1, "FF absorbed into the XOR LUT");
        assert_equivalent(&g, &c, 64, 21);
    }

    #[test]
    fn map_sequential_without_absorption() {
        // The next-state logic also feeds an output, so it cannot be
        // absorbed and a pass-through registered LUT is created.
        let mut g = Aig::new("acc2");
        let en = g.add_input("en");
        let q = g.add_latch("q", false);
        let nxt = g.xor(q, en);
        g.connect_latch(q, nxt).unwrap();
        g.add_output("q", q);
        g.add_output("nxt", nxt);
        let c = map_aig(&g, MapOptions::default()).unwrap();
        assert_eq!(c.lut_count(), 2);
        assert_equivalent(&g, &c, 64, 22);
    }

    #[test]
    fn map_latch_from_input_and_const() {
        let mut g = Aig::new("lat");
        let a = g.add_input("a");
        let q1 = g.add_latch("q1", false);
        g.connect_latch(q1, a).unwrap();
        let q2 = g.add_latch("q2", true);
        g.connect_latch(q2, AigLit::TRUE).unwrap();
        let q3 = g.add_latch("q3", false);
        g.connect_latch(q3, !a).unwrap();
        let y1 = g.and(q1, q2);
        let y = g.and(y1, q3);
        g.add_output("y", y);
        let c = map_aig(&g, MapOptions::default()).unwrap();
        assert_equivalent(&g, &c, 64, 17);
    }

    #[test]
    fn map_respects_k() {
        for k in [2usize, 3, 4, 5, 6] {
            let mut g = Aig::new("wide");
            let ins: Vec<AigLit> = (0..10).map(|i| g.add_input(format!("i{i}"))).collect();
            let mut acc = ins[0];
            for &l in &ins[1..] {
                let x = g.xor(acc, l);
                acc = g.and(x, ins[0]);
            }
            g.add_output("y", acc);
            let c = map_aig(&g, MapOptions::for_k(k)).unwrap();
            for &id in c.luts() {
                assert!(c.block(id).fanin().len() <= k);
            }
            assert_equivalent(&g, &c, 32, k as u64);
        }
    }

    #[test]
    fn mapping_is_deterministic() {
        let mut g = Aig::new("det");
        let ins: Vec<AigLit> = (0..6).map(|i| g.add_input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for (j, &l) in ins[1..].iter().enumerate() {
            acc = if j % 2 == 0 {
                g.xor(acc, l)
            } else {
                g.or(acc, l)
            };
        }
        g.add_output("y", acc);
        let c1 = map_aig(&g, MapOptions::default()).unwrap();
        let c2 = map_aig(&g, MapOptions::default()).unwrap();
        assert_eq!(c1.lut_count(), c2.lut_count());
        assert_eq!(
            mm_netlist::blif::to_blif(&c1),
            mm_netlist::blif::to_blif(&c2)
        );
    }

    #[test]
    fn shared_logic_not_duplicated() {
        // y0 = a&b&c, y1 = (a&b)&d: the a&b node is shared; total LUTs
        // must not exceed 3 (and with 4-LUTs should be 2).
        let mut g = Aig::new("share");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        let abd = g.and(ab, d);
        g.add_output("y0", abc);
        g.add_output("y1", abd);
        let circuit = map_aig(&g, MapOptions::default()).unwrap();
        assert!(circuit.lut_count() <= 2, "got {}", circuit.lut_count());
        assert_equivalent(&g, &circuit, 32, 2);
    }
}
