//! Synthesis front-end: AIG construction and k-LUT technology mapping.
//!
//! The multi-mode tool flow (paper §III) runs the *conventional* FPGA
//! front-end once per mode: synthesis to an [`Aig`] (with structural
//! hashing and constant propagation) followed by k-LUT technology mapping
//! ([`map_aig`]) to a [`mm_netlist::LutCircuit`]. The merge
//! step of the flow then operates on the per-mode LUT circuits.
//!
//! Constant propagation in the AIG is also how the adaptive-filter
//! benchmark specialises its FIR coefficients: "the non-zero coefficients
//! were chosen randomly, after which all the constants were propagated.
//! Such a FIR filter is 3 times smaller than the generic version."
//!
//! # Example
//!
//! ```
//! use mm_netlist::GateNetwork;
//! use mm_synth::{synthesize, MapOptions};
//!
//! # fn main() -> Result<(), mm_netlist::NetlistError> {
//! let mut n = GateNetwork::new("full_adder");
//! let a = n.add_input("a")?;
//! let b = n.add_input("b")?;
//! let cin = n.add_input("cin")?;
//! let ab = n.xor(a, b);
//! let s = n.xor(ab, cin);
//! let g1 = n.and(a, b);
//! let g2 = n.and(ab, cin);
//! let cout = n.or(g1, g2);
//! n.add_output("s", s)?;
//! n.add_output("cout", cout)?;
//!
//! let circuit = synthesize(&n, MapOptions::default())?;
//! assert_eq!(circuit.lut_count(), 2); // one 4-LUT per output
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
mod cuts;
mod map;

pub use aig::{Aig, AigLatch, AigLit, AigNode, AigSimulator};
pub use cuts::{prune_dominated, Cut, MAX_CUT};
pub use map::{map_aig, MapOptions};

use mm_netlist::{GateNetwork, LutCircuit, NetlistError};

/// One-call synthesis: lowers a gate network to an AIG and maps it to
/// k-input LUTs.
///
/// # Errors
///
/// Propagates netlist-construction errors from mapping (indicative of
/// malformed input networks).
pub fn synthesize(net: &GateNetwork, options: MapOptions) -> Result<LutCircuit, NetlistError> {
    let aig = Aig::from_gates(net);
    map_aig(&aig, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::{GateSimulator, LutSimulator};

    #[test]
    fn synthesize_end_to_end_equivalence() {
        // A 4-bit ripple-carry adder with registered sum.
        let mut n = GateNetwork::new("adder4");
        let a: Vec<_> = (0..4)
            .map(|i| n.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<_> = (0..4)
            .map(|i| n.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = n.constant(false);
        for i in 0..4 {
            let axb = n.xor(a[i], b[i]);
            let s = n.xor(axb, carry);
            let g1 = n.and(a[i], b[i]);
            let g2 = n.and(axb, carry);
            carry = n.or(g1, g2);
            let q = n.dff(s, false);
            n.add_output(format!("s{i}"), q).unwrap();
        }
        n.add_output("cout", carry).unwrap();

        let c = synthesize(&n, MapOptions::default()).unwrap();
        assert!(c.lut_count() >= 5, "adder needs logic: {}", c.lut_count());

        let mut gs = GateSimulator::new(&n);
        let mut ls = LutSimulator::new(&c).unwrap();
        let mut state = 0xdead_beefu64;
        for cycle in 0..256 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bits: Vec<bool> = (0..8).map(|j| (state >> (j + 20)) & 1 == 1).collect();
            assert_eq!(gs.step(&bits), ls.step(&bits), "cycle {cycle}");
        }
    }

    #[test]
    fn constant_inputs_shrink_circuit() {
        // The same multiplier datapath with one operand constant maps to
        // far fewer LUTs — the FIR-specialisation effect.
        fn datapath(constant_b: Option<u8>) -> usize {
            let mut n = GateNetwork::new("mul");
            let a: Vec<_> = (0..8)
                .map(|i| n.add_input(format!("a{i}")).unwrap())
                .collect();
            let b: Vec<_> = match constant_b {
                Some(value) => (0..8).map(|i| n.constant((value >> i) & 1 == 1)).collect(),
                None => (0..8)
                    .map(|i| n.add_input(format!("b{i}")).unwrap())
                    .collect(),
            };
            // Sum of partial products a & b_i shifted (truncated to 8 bits).
            let mut acc: Vec<_> = (0..8).map(|_| n.constant(false)).collect();
            for (i, &bi) in b.iter().enumerate() {
                let mut carry = n.constant(false);
                let partial: Vec<_> = (0..8 - i).map(|j| n.and(a[j], bi)).collect();
                for (j, &p) in partial.iter().enumerate() {
                    let pos = i + j;
                    let axb = n.xor(acc[pos], p);
                    let s = n.xor(axb, carry);
                    let g1 = n.and(acc[pos], p);
                    let g2 = n.and(axb, carry);
                    carry = n.or(g1, g2);
                    acc[pos] = s;
                }
            }
            for (i, &s) in acc.iter().enumerate() {
                n.add_output(format!("p{i}"), s).unwrap();
            }
            let c = synthesize(&n, MapOptions::default()).unwrap();
            c.lut_count()
        }
        let generic = datapath(None);
        let specialised = datapath(Some(0b0000_0101)); // sparse coefficient
        assert!(
            specialised * 2 < generic,
            "specialised {specialised} vs generic {generic}"
        );
    }
}
