//! And-Inverter Graphs with structural hashing and constant folding.
//!
//! The AIG is the synthesis IR between the generators' gate networks and
//! technology mapping. Structural hashing merges identical gates and the
//! constant-folding rules propagate constants — this is what shrinks a
//! constant-coefficient FIR filter to a third of its generic size
//! (paper §IV-A).

use mm_netlist::{GateNetwork, GateOp, NetlistError, SignalId};
use std::collections::HashMap;
use std::fmt;

/// A literal: an AIG node with an optional complement.
///
/// Encoding is the conventional `2·node + complement`; the constant node 0
/// yields the literals [`AigLit::FALSE`] and [`AigLit::TRUE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    /// Builds a literal from node index and complement flag.
    #[must_use]
    pub fn new(node: u32, complement: bool) -> Self {
        AigLit(node << 1 | u32::from(complement))
    }

    /// The node the literal refers to.
    #[must_use]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    #[must_use]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether the literal is one of the two constants.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// One AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-false node (index 0 only).
    Const,
    /// Primary input.
    Input,
    /// Latch (flip-flop) output; its data input lives in [`AigLatch`].
    Latch,
    /// Two-input AND of the literals.
    And(AigLit, AigLit),
}

/// Bookkeeping for one latch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AigLatch {
    /// The node representing the latch output.
    pub node: u32,
    /// Data input (next-state function).
    pub input: AigLit,
    /// Initial value.
    pub init: bool,
    /// Latch name (becomes the registered block name after mapping).
    pub name: String,
}

/// An And-Inverter Graph with named ports and latches.
///
/// Nodes are append-only and AND operands always precede their gate, so
/// node order is a topological order of the combinational logic; latches
/// close sequential cycles through [`Aig::connect_latch`].
///
/// # Example
///
/// ```
/// use mm_synth::Aig;
///
/// let mut g = Aig::new("maj");
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let c = g.add_input("c");
/// let ab = g.and(a, b);
/// let bc = g.and(b, c);
/// let ac = g.and(a, c);
/// let t = g.or(ab, bc);
/// let maj = g.or(t, ac);
/// g.add_output("maj", maj);
/// assert_eq!(g.and_count(), 5);
/// // Structural hashing: rebuilding an existing gate is free.
/// assert_eq!(g.and(a, b), ab);
/// assert_eq!(g.and_count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Aig {
    name: String,
    nodes: Vec<AigNode>,
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, AigLit)>,
    latches: Vec<AigLatch>,
    strash: HashMap<(AigLit, AigLit), u32>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: vec![AigNode::Const],
            inputs: Vec::new(),
            outputs: Vec::new(),
            latches: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The graph name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Constant literal of the given polarity.
    #[must_use]
    pub fn constant(value: bool) -> AigLit {
        if value {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }

    /// Adds a named primary input and returns its literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> AigLit {
        let node = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input);
        self.inputs.push((name.into(), node));
        AigLit::new(node, false)
    }

    /// Adds a latch (data input connected later) and returns the literal of
    /// its output.
    pub fn add_latch(&mut self, name: impl Into<String>, init: bool) -> AigLit {
        let node = self.nodes.len() as u32;
        self.nodes.push(AigNode::Latch);
        self.latches.push(AigLatch {
            node,
            input: AigLit::new(node, false), // self until connected
            init,
            name: name.into(),
        });
        AigLit::new(node, false)
    }

    /// Connects the data input of the latch whose output node is
    /// `latch.node()`.
    ///
    /// # Errors
    ///
    /// Fails if `latch` does not refer to a latch node.
    pub fn connect_latch(&mut self, latch: AigLit, data: AigLit) -> Result<(), NetlistError> {
        let node = latch.node();
        match self.latches.iter_mut().find(|l| l.node == node) {
            Some(l) => {
                l.input = if latch.is_complemented() { !data } else { data };
                Ok(())
            }
            None => Err(NetlistError::WrongBlockKind(format!(
                "{latch} is not a latch"
            ))),
        }
    }

    /// Exports `lit` as a named primary output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: AigLit) {
        self.outputs.push((name.into(), lit));
    }

    /// Structural-hashed, constant-folded AND of two literals.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding and trivial identities.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&key) {
            return AigLit::new(node, false);
        }
        let node = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(key.0, key.1));
        self.strash.insert(key, node);
        AigLit::new(node, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n = self.and(!a, !b);
        !n
    }

    /// XOR as three ANDs.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let p = self.and(a, !b);
        let q = self.and(!a, b);
        self.or(p, q)
    }

    /// Multiplexer `sel ? hi : lo`.
    pub fn mux(&mut self, sel: AigLit, hi: AigLit, lo: AigLit) -> AigLit {
        let p = self.and(sel, hi);
        let q = self.and(!sel, lo);
        self.or(p, q)
    }

    /// The node table entry for `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node index is out of range.
    #[must_use]
    pub fn node(&self, node: u32) -> AigNode {
        self.nodes[node as usize]
    }

    /// Total number of nodes (constant + inputs + latches + ANDs).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    #[must_use]
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// Named inputs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// Named outputs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, AigLit)] {
        &self.outputs
    }

    /// Latches in declaration order.
    #[must_use]
    pub fn latches(&self) -> &[AigLatch] {
        &self.latches
    }

    /// Longest path from any source to any AND node, in AND levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = n {
                level[i] = 1 + level[a.node() as usize].max(level[b.node() as usize]);
                max = max.max(level[i]);
            }
        }
        max
    }

    /// Lowers a gate-level network into a fresh AIG (with structural
    /// hashing and constant propagation applied on the fly).
    #[must_use]
    pub fn from_gates(net: &GateNetwork) -> Self {
        let mut aig = Aig::new(net.name().to_string());
        let mut lit_of: HashMap<SignalId, AigLit> = HashMap::new();
        let mut input_iter = net.inputs().iter();
        // First pass: create inputs and latches so that feedback
        // references resolve.
        for s in net.signal_ids() {
            match net.op(s) {
                GateOp::Input => {
                    let (name, _) = input_iter.next().expect("inputs in declaration order");
                    let l = aig.add_input(name.clone());
                    lit_of.insert(s, l);
                }
                GateOp::Dff { init, .. } => {
                    let l = aig.add_latch(format!("ff{}", s.index()), init);
                    lit_of.insert(s, l);
                }
                _ => {}
            }
        }
        // Second pass: combinational gates in definition order.
        for s in net.signal_ids() {
            let lit = match net.op(s) {
                GateOp::Input | GateOp::Dff { .. } => continue,
                GateOp::Const(v) => Aig::constant(v),
                GateOp::Not(a) => !lit_of[&a],
                GateOp::And(a, b) => {
                    let (a, b) = (lit_of[&a], lit_of[&b]);
                    aig.and(a, b)
                }
                GateOp::Or(a, b) => {
                    let (a, b) = (lit_of[&a], lit_of[&b]);
                    aig.or(a, b)
                }
                GateOp::Xor(a, b) => {
                    let (a, b) = (lit_of[&a], lit_of[&b]);
                    aig.xor(a, b)
                }
                GateOp::Mux { sel, hi, lo } => {
                    let (s_, h, l) = (lit_of[&sel], lit_of[&hi], lit_of[&lo]);
                    aig.mux(s_, h, l)
                }
            };
            lit_of.insert(s, lit);
        }
        // Third pass: latch data inputs and outputs.
        for s in net.signal_ids() {
            if let GateOp::Dff { d, .. } = net.op(s) {
                let latch = lit_of[&s];
                let data = lit_of[&d];
                aig.connect_latch(latch, data)
                    .expect("latch created in first pass");
            }
        }
        for (name, s) in net.outputs() {
            aig.add_output(name.clone(), lit_of[s]);
        }
        aig
    }
}

/// Cycle-accurate simulator for an [`Aig`] (used to validate lowering and
/// mapping).
#[derive(Debug, Clone)]
pub struct AigSimulator<'a> {
    aig: &'a Aig,
    values: Vec<bool>,
    state: HashMap<u32, bool>,
}

impl<'a> AigSimulator<'a> {
    /// Creates a simulator with latches at their initial values.
    #[must_use]
    pub fn new(aig: &'a Aig) -> Self {
        let state = aig.latches.iter().map(|l| (l.node, l.init)).collect();
        Self {
            aig,
            values: vec![false; aig.node_count()],
            state,
        }
    }

    fn lit_value(&self, lit: AigLit) -> bool {
        self.values[lit.node() as usize] ^ lit.is_complemented()
    }

    /// Evaluates one clock cycle (outputs sampled before the edge).
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the input count.
    pub fn step(&mut self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.aig.inputs.len(),
            "input width mismatch"
        );
        let mut next_input = input_values.iter();
        for (i, node) in self.aig.nodes.iter().enumerate() {
            self.values[i] = match node {
                AigNode::Const => false,
                AigNode::Input => *next_input.next().expect("inputs counted"),
                AigNode::Latch => self.state[&(i as u32)],
                AigNode::And(a, b) => self.lit_value(*a) && self.lit_value(*b),
            };
        }
        let sampled: Vec<bool> = self
            .aig
            .outputs
            .iter()
            .map(|&(_, lit)| self.lit_value(lit))
            .collect();
        let next: Vec<(u32, bool)> = self
            .aig
            .latches
            .iter()
            .map(|l| (l.node, self.lit_value(l.input)))
            .collect();
        for (n, v) in next {
            self.state.insert(n, v);
        }
        sampled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::GateSimulator;

    #[test]
    fn literal_encoding() {
        let l = AigLit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_complemented());
        assert_eq!((!l).node(), 5);
        assert!(!(!l).is_complemented());
        assert!(AigLit::TRUE.is_const());
    }

    #[test]
    fn constant_folding() {
        let mut g = Aig::new("t");
        let a = g.add_input("a");
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(AigLit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.and_count(), 0);
    }

    #[test]
    fn strash_dedup_commutative() {
        let mut g = Aig::new("t");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.and_count(), 1);
    }

    #[test]
    fn xor_and_mux_shapes() {
        let mut g = Aig::new("t");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let s = g.add_input("s");
        let _x = g.xor(a, b);
        assert_eq!(g.and_count(), 3);
        let _m = g.mux(s, a, b);
        assert_eq!(g.and_count(), 6);
    }

    #[test]
    fn depth_counts_and_levels() {
        let mut g = Aig::new("t");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_output("y", abc);
        assert_eq!(g.depth(), 2);
    }

    #[test]
    fn lower_gate_network_equivalent() {
        let mut n = GateNetwork::new("mix");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let c = n.add_input("c").unwrap();
        let x = n.xor(a, b);
        let m = n.mux(c, x, a);
        let o = n.nor(m, b);
        n.add_output("y", o).unwrap();
        let aig = Aig::from_gates(&n);

        let mut gs = GateSimulator::new(&n);
        let mut asim = AigSimulator::new(&aig);
        for code in 0..8u32 {
            let ins = [(code & 1) != 0, (code & 2) != 0, (code & 4) != 0];
            assert_eq!(gs.step(&ins), asim.step(&ins), "code={code}");
        }
    }

    #[test]
    fn lower_sequential_equivalent() {
        // 3-bit LFSR-ish toggle chain with an enable.
        let mut n = GateNetwork::new("seq");
        let en = n.add_input("en").unwrap();
        let ff0 = n.add_dff(true);
        let ff1 = n.add_dff(false);
        let t0 = n.xor(ff0, en);
        let t1 = n.xor(ff1, ff0);
        n.connect_dff(ff0, t0).unwrap();
        n.connect_dff(ff1, t1).unwrap();
        n.add_output("q0", ff0).unwrap();
        n.add_output("q1", ff1).unwrap();
        let aig = Aig::from_gates(&n);
        assert_eq!(aig.latches().len(), 2);

        let mut gs = GateSimulator::new(&n);
        let mut asim = AigSimulator::new(&aig);
        let stim = [true, false, true, true, false, false, true, false];
        for (i, &e) in stim.iter().enumerate() {
            assert_eq!(gs.step(&[e]), asim.step(&[e]), "cycle {i}");
        }
    }

    #[test]
    fn constant_propagation_through_network() {
        let mut n = GateNetwork::new("cp");
        let a = n.add_input("a").unwrap();
        let zero = n.constant(false);
        let x = n.and(a, zero); // = 0
        let y = n.or(x, a); // = a
        n.add_output("y", y).unwrap();
        let aig = Aig::from_gates(&n);
        assert_eq!(aig.and_count(), 0, "everything folds to a wire");
        let (_, lit) = &aig.outputs()[0];
        assert_eq!(lit.node(), aig.inputs()[0].1);
    }

    #[test]
    fn connect_latch_complement_handling() {
        let mut g = Aig::new("t");
        let l = g.add_latch("l", false);
        let a = g.add_input("a");
        // Connecting through a complemented latch literal stores the
        // complement on the data side.
        g.connect_latch(!l, a).unwrap();
        assert_eq!(g.latches()[0].input, !a);
        assert!(g.connect_latch(a, l).is_err());
    }
}
