//! k-feasible cuts over AIG nodes.
//!
//! A *cut* of node `n` is a set of nodes (*leaves*) such that every path
//! from a source to `n` passes through a leaf; a cut with at most `k`
//! leaves can be implemented by one k-input LUT computing the cone between
//! the leaves and `n`. Technology mapping enumerates *priority cuts*
//! bottom-up: the cuts of an AND gate are merges of its fanins' cuts,
//! pruned by dominance and ranked by (depth, area flow).

use mm_netlist::MAX_LUT_INPUTS;

/// Maximum number of leaves in a cut (bounded by the LUT width).
pub const MAX_CUT: usize = MAX_LUT_INPUTS;

/// A sorted set of at most [`MAX_CUT`] leaf nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: [u32; MAX_CUT],
    len: u8,
}

impl Cut {
    /// The trivial cut `{node}` — the node provided as a leaf by whatever
    /// implements it.
    #[must_use]
    pub fn trivial(node: u32) -> Self {
        let mut leaves = [0u32; MAX_CUT];
        leaves[0] = node;
        Self { leaves, len: 1 }
    }

    /// The leaves, sorted ascending.
    #[must_use]
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// A cut always has at least one leaf.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` is one of the leaves.
    #[must_use]
    pub fn contains(&self, node: u32) -> bool {
        self.leaves().binary_search(&node).is_ok()
    }

    /// Merges two cuts (sorted-set union); `None` if the union exceeds `k`
    /// leaves.
    ///
    /// # Panics
    ///
    /// Panics if `k > MAX_CUT`.
    #[must_use]
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        assert!(k <= MAX_CUT, "k exceeds MAX_CUT");
        let mut leaves = [0u32; MAX_CUT];
        let (a, b) = (self.leaves(), other.leaves());
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < a.len() || j < b.len() {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) => {
                    if x == y {
                        j += 1;
                    }
                    x <= y
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            let v = if take_a {
                let v = a[i];
                i += 1;
                v
            } else {
                let v = b[j];
                j += 1;
                v
            };
            if n == k {
                return None;
            }
            leaves[n] = v;
            n += 1;
        }
        Some(Cut {
            leaves,
            len: n as u8,
        })
    }

    /// Whether `self`'s leaves are a subset of `other`'s — then `self`
    /// *dominates* `other` and the larger cut can be pruned.
    #[must_use]
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.len > other.len {
            return false;
        }
        self.leaves().iter().all(|&l| other.contains(l))
    }
}

/// Removes dominated cuts, keeping the first occurrence order otherwise.
pub fn prune_dominated(cuts: &mut Vec<Cut>) {
    let mut keep: Vec<Cut> = Vec::with_capacity(cuts.len());
    'outer: for c in cuts.iter() {
        for k in &keep {
            if k.dominates(c) {
                continue 'outer;
            }
        }
        keep.retain(|k| !c.dominates(k));
        keep.push(*c);
    }
    *cuts = keep;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(leaves: &[u32]) -> Cut {
        let mut c = Cut::trivial(leaves[0]);
        for &l in &leaves[1..] {
            c = c.merge(&Cut::trivial(l), MAX_CUT).expect("fits");
        }
        c
    }

    #[test]
    fn trivial_cut() {
        let c = Cut::trivial(7);
        assert_eq!(c.leaves(), &[7]);
        assert_eq!(c.len(), 1);
        assert!(c.contains(7));
        assert!(!c.contains(3));
    }

    #[test]
    fn merge_unions_sorted() {
        let a = cut(&[1, 5, 9]);
        let b = cut(&[2, 5, 10]);
        let m = a.merge(&b, 6).expect("fits in 6");
        assert_eq!(m.leaves(), &[1, 2, 5, 9, 10]);
    }

    #[test]
    fn merge_respects_k() {
        let a = cut(&[1, 2, 3]);
        let b = cut(&[4, 5, 6]);
        assert!(a.merge(&b, 4).is_none());
        assert!(a.merge(&b, 6).is_some());
    }

    #[test]
    fn merge_identical_is_same() {
        let a = cut(&[3, 8]);
        let m = a.merge(&a, 2).expect("same set");
        assert_eq!(m.leaves(), &[3, 8]);
    }

    #[test]
    fn dominance() {
        let small = cut(&[1, 3]);
        let big = cut(&[1, 2, 3]);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small));
    }

    #[test]
    fn prune_removes_supersets() {
        let mut cuts = vec![cut(&[1, 2, 3]), cut(&[1, 3]), cut(&[2, 4]), cut(&[2, 4, 5])];
        prune_dominated(&mut cuts);
        assert_eq!(cuts, vec![cut(&[1, 3]), cut(&[2, 4])]);
    }

    #[test]
    fn prune_keeps_incomparable() {
        let mut cuts = vec![cut(&[1, 2]), cut(&[2, 3]), cut(&[1, 3])];
        prune_dominated(&mut cuts);
        assert_eq!(cuts.len(), 3);
    }
}
