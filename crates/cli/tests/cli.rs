//! Integration tests driving the `mmflow` binary end to end.

use std::path::PathBuf;
use std::process::Command;

fn mmflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmflow"))
}

fn write_blif(dir: &std::path::Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmflow_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const MODE_A: &str = "\
.model a
.inputs x y
.outputs f
.names x y n1
11 1
.names n1 f
1 1
.end
";

const MODE_B: &str = "\
.model b
.inputs x y
.outputs f
.names x y n1
00 1
.names n1 f
0 1
.end
";

#[test]
fn merge_command_reports_speedup() {
    let dir = tmpdir("merge");
    let a = write_blif(&dir, "a.blif", MODE_A);
    let b = write_blif(&dir, "b.blif", MODE_B);
    let out = mmflow()
        .args([
            "merge",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--width",
            "6",
            "--bits",
            "3",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("speed-up"), "{stdout}");
    assert!(stdout.contains("tunable"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mdr_command_reports_costs() {
    let dir = tmpdir("mdr");
    let a = write_blif(&dir, "a.blif", MODE_A);
    let b = write_blif(&dir, "b.blif", MODE_B);
    let out = mmflow()
        .args([
            "mdr",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--width",
            "6",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MDR rewrite"), "{stdout}");
    assert!(stdout.contains("diff rewrite"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_command_prints_counts() {
    let dir = tmpdir("stats");
    let a = write_blif(&dir, "a.blif", MODE_A);
    let out = mmflow()
        .args(["stats", a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LUTs"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_command_streams_jsonl_and_summary() {
    let dir = tmpdir("batch");
    // Two mode groups → two jobs.
    for group in ["g0", "g1"] {
        let gdir = dir.join(group);
        std::fs::create_dir_all(&gdir).unwrap();
        write_blif(&gdir, "a.blif", MODE_A);
        write_blif(&gdir, "b.blif", MODE_B);
    }
    let cache = dir.join("cache");
    let run = || {
        mmflow()
            .args([
                "batch",
                dir.to_str().unwrap(),
                "--width",
                "6",
                "--cache",
                cache.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let cold = run();
    assert!(
        cold.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let stdout = String::from_utf8_lossy(&cold.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(
        lines[0].starts_with(r#"{"name":"g0","flow":"dcs","status":"ok""#),
        "{stdout}"
    );
    assert!(lines[1].contains(r#""name":"g1""#), "{stdout}");
    let stderr = String::from_utf8_lossy(&cold.stderr);
    assert!(stderr.contains("\"jobs\":2"), "{stderr}");

    // Warm re-run: byte-identical stdout, zero recomputation.
    let warm = run();
    assert!(warm.status.success());
    assert_eq!(warm.stdout, cold.stdout, "cache transparency");
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("\"stages_recomputed\":0"), "{stderr}");
    assert!(stderr.contains("\"results_from_cache\":2"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_serial_equals_parallel() {
    let dir = tmpdir("batch_det");
    for group in ["p0", "p1", "p2"] {
        let gdir = dir.join(group);
        std::fs::create_dir_all(&gdir).unwrap();
        write_blif(&gdir, "a.blif", MODE_A);
        write_blif(&gdir, "b.blif", MODE_B);
    }
    let run = |threads: &str| {
        mmflow()
            .args([
                "batch",
                dir.to_str().unwrap(),
                "--width",
                "6",
                "--no-cache",
                "--threads",
                threads,
            ])
            .output()
            .unwrap()
    };
    let serial = run("1");
    let parallel = run("4");
    assert!(serial.status.success() && parallel.status.success());
    assert_eq!(serial.stdout, parallel.stdout, "byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_rejects_bad_specs() {
    let out = mmflow()
        .args(["batch", "suite:bogus", "--no-cache"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = mmflow().args(["batch"]).output().unwrap();
    assert!(!out.status.success());
    let out = mmflow()
        .args(["batch", "/nonexistent/spec.json", "--no-cache"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn batch_validates_suite_mode_counts() {
    // An infeasible suite mode count fails fast (before any circuit is
    // generated), in both spellings.
    let out = mmflow()
        .args(["batch", "suite:regexp:1", "--no-cache"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("at least 2 modes"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = mmflow()
        .args(["batch", "suite:regexp", "--modes", "1", "--no-cache"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // A mode-count override on a non-suite spec is rejected.
    let dir = tmpdir("modesdir");
    let out = mmflow()
        .args(["batch", dir.to_str().unwrap(), "--modes", "3", "--no-cache"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("generated suites"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_fails_with_help() {
    let out = mmflow().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
    let out = mmflow().output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn merge_rejects_missing_file() {
    let out = mmflow()
        .args(["merge", "/nonexistent/zz.blif"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bench_smoke_writes_parseable_json_artefacts() {
    let dir = tmpdir("bench");
    let out = mmflow()
        .args(["bench", "--smoke", "--reps", "1", "--json"])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("router:"), "{stderr}");
    assert!(stderr.contains("parity ok"), "{stderr}");
    for artefact in ["BENCH_router.json", "BENCH_flow.json"] {
        let text = std::fs::read_to_string(dir.join(artefact)).unwrap();
        assert!(
            mm_engine::json::parse(&text).is_ok(),
            "{artefact} must be valid JSON: {text}"
        );
        assert!(text.contains("\"bench\""), "{text}");
    }
    // The flow artefact carries the parity-gated multi-mode section.
    let flow = std::fs::read_to_string(dir.join("BENCH_flow.json")).unwrap();
    assert!(flow.contains("\"nmodes\""), "{flow}");
    assert!(flow.contains("\"parity_ok\":true"), "{flow}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_gc_evicts_and_reports() {
    let dir = tmpdir("gc");
    let a = write_blif(&dir, "a.blif", MODE_A);
    let b = write_blif(&dir, "b.blif", MODE_B);
    let group = dir.join("jobs").join("g0");
    std::fs::create_dir_all(&group).unwrap();
    std::fs::copy(&a, group.join("m0.blif")).unwrap();
    std::fs::copy(&b, group.join("m1.blif")).unwrap();
    let cache = dir.join("cache");

    // Populate the cache through a batch run.
    let out = mmflow()
        .args(["batch", dir.join("jobs").to_str().unwrap()])
        .args(["--cache", cache.to_str().unwrap(), "--width", "6"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // GC with no limits keeps everything.
    let out = mmflow()
        .args(["cache", "gc", "--cache", cache.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("evicted 0"), "{stdout}");

    // A zero-byte budget evicts every entry.
    let out = mmflow()
        .args(["cache", "gc", "--cache", cache.to_str().unwrap()])
        .args(["--max-bytes", "0"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 bytes remain"), "{stdout}");

    // Unknown flags and missing directories fail loudly.
    let out = mmflow()
        .args(["cache", "gc", "--cache", "/nonexistent/nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = mmflow().args(["cache", "frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}
