//! End-to-end: a real `mmflow serve` process on a Unix socket, driven by
//! real `mmflow submit` / `mmflow batch` invocations of the same binary.
//!
//! The acceptance contract: submit's stdout is **byte-identical** to
//! batch's stdout on the same spec; an induced-failure job yields one
//! structured error record without disturbing the others; shutdown
//! drains the server cleanly.

use mm_netlist::{blif, LutCircuit};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn mmflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmflow"))
}

/// The repo's shared seeded circuit shape (`mm_gen`).
fn small_circuit(name: &str, n_luts: usize, seed: u64) -> LutCircuit {
    mm_gen::seeded_test_circuit(name, 5, n_luts, seed)
}

fn write_spec_dir(root: &Path, groups: usize, modes: usize) -> PathBuf {
    let dir = root.join("jobs");
    for g in 0..groups {
        let group = dir.join(format!("g{g}"));
        std::fs::create_dir_all(&group).unwrap();
        for m in 0..modes {
            let c = small_circuit(&format!("m{m}"), 8 + g, 0xe2e_0000 + (g * 10 + m) as u64);
            std::fs::write(group.join(format!("m{m}.blif")), blif::to_blif(&c)).unwrap();
        }
    }
    dir
}

/// Kills the server on drop so a failing assertion never leaks a child.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_server(socket: &Path) -> ServerGuard {
    let child = mmflow()
        .args([
            "serve",
            "--listen",
            &format!("unix:{}", socket.display()),
            "--no-cache",
            "--threads",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mmflow serve");
    // The socket path appears once the listener is bound.
    let t0 = Instant::now();
    while !socket.exists() {
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "server did not bind {socket:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    ServerGuard(child)
}

fn run_ok(args: &[&str]) -> Output {
    let out = mmflow().args(args).output().expect("run mmflow");
    assert!(
        out.status.success(),
        "mmflow {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn serve_roundtrip_is_byte_identical_to_batch_and_drains_on_shutdown() {
    let root = std::env::temp_dir().join(format!("mmflow_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let spec = write_spec_dir(&root, 2, 2);
    let spec_str = spec.to_str().unwrap();
    let socket = root.join("mmflow.sock");

    // Reference bytes: the batch pipeline on the same spec.
    let batch = run_ok(&[
        "batch",
        spec_str,
        "--no-cache",
        "--width",
        "12",
        "--effort",
        "1",
    ]);
    assert_eq!(batch.stdout.iter().filter(|&&b| b == b'\n').count(), 2);

    let server = start_server(&socket);
    let connect = format!("unix:{}", socket.display());

    // Round 1: the suite through the socket.
    let submit = run_ok(&[
        "submit",
        spec_str,
        "--connect",
        &connect,
        "--width",
        "12",
        "--effort",
        "1",
    ]);
    assert_eq!(
        submit.stdout, batch.stdout,
        "serve stream must be byte-identical to batch output"
    );

    // Round 2: an induced-failure job among good ones — the batch
    // completes, exactly that job errors, and submit mirrors batch's
    // non-zero exit.
    let mixed = root.join("mixed.json");
    std::fs::write(
        &mixed,
        format!(
            r#"{{
              "defaults": {{"width": 12, "effort": 1}},
              "jobs": [
                {{"name": "good", "modes": ["{d}/g0/m0.blif", "{d}/g0/m1.blif"]}},
                {{"name": "doomed", "modes": ["{d}/g1/m0.blif", "{d}/g1/m1.blif"],
                  "width": 1, "max_width": 1, "max_iterations": 3}}
              ]
            }}"#,
            d = spec.display()
        ),
    )
    .unwrap();
    let batch_mixed = mmflow()
        .args(["batch", mixed.to_str().unwrap(), "--no-cache"])
        .output()
        .unwrap();
    assert!(!batch_mixed.status.success(), "failed job fails batch");
    let submit_mixed = mmflow()
        .args(["submit", mixed.to_str().unwrap(), "--connect", &connect])
        .output()
        .unwrap();
    assert!(!submit_mixed.status.success(), "failed job fails submit");
    assert_eq!(
        submit_mixed.stdout, batch_mixed.stdout,
        "error records stream byte-identically too"
    );
    let text = String::from_utf8(submit_mixed.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "every job has a record: {lines:?}");
    assert!(lines[0].contains(r#""name":"good""#) && lines[0].contains(r#""status":"ok""#));
    assert!(
        lines[1].contains(r#""name":"doomed""#)
            && lines[1].contains(r#""status":"error""#)
            && lines[1].contains(r#""stage":"route""#),
        "{}",
        lines[1]
    );

    // Round 3: drain. The server must exit on its own after --shutdown.
    run_ok(&["submit", "--connect", &connect, "--shutdown"]);
    let mut server = server;
    let t0 = Instant::now();
    loop {
        if let Some(status) = server.0.try_wait().unwrap() {
            assert!(status.success(), "server exits cleanly after drain");
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "server did not drain after shutdown"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(!socket.exists(), "socket path removed on exit");
    let _ = std::fs::remove_dir_all(&root);
}

/// The N-mode path over the real wire: a 3-mode spec batch streamed by
/// `mmflow serve` must be byte-identical to `mmflow batch` stdout, and
/// an induced-failure 3-mode job must yield exactly one structured
/// error record without disturbing its neighbours.
#[test]
fn serve_streams_three_mode_batches_byte_identical_to_batch() {
    let root = std::env::temp_dir().join(format!("mmflow_e2e_n3_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let spec = write_spec_dir(&root, 2, 3);
    let spec_str = spec.to_str().unwrap();
    let socket = root.join("mmflow-n3.sock");

    // Reference bytes: the batch pipeline on the same 3-mode spec.
    let batch = run_ok(&[
        "batch",
        spec_str,
        "--no-cache",
        "--width",
        "12",
        "--effort",
        "1",
    ]);
    assert_eq!(batch.stdout.iter().filter(|&&b| b == b'\n').count(), 2);

    let server = start_server(&socket);
    let connect = format!("unix:{}", socket.display());

    let submit = run_ok(&[
        "submit",
        spec_str,
        "--connect",
        &connect,
        "--width",
        "12",
        "--effort",
        "1",
    ]);
    assert_eq!(
        submit.stdout, batch.stdout,
        "3-mode serve stream must be byte-identical to batch output"
    );
    let text = String::from_utf8(submit.stdout).unwrap();
    for line in text.lines() {
        assert!(line.contains(r#""status":"ok""#), "{line}");
    }

    // An induced-failure 3-mode job (impossible width cap) among good
    // ones: the batch completes, exactly that job errors — structured,
    // with its failing stage — and serve mirrors batch byte-for-byte.
    let mixed = root.join("mixed-n3.json");
    std::fs::write(
        &mixed,
        format!(
            r#"{{
              "defaults": {{"width": 12, "effort": 1}},
              "jobs": [
                {{"name": "good", "flow": "combined",
                  "modes": ["{d}/g0/m0.blif", "{d}/g0/m1.blif", "{d}/g0/m2.blif"]}},
                {{"name": "doomed",
                  "modes": ["{d}/g1/m0.blif", "{d}/g1/m1.blif", "{d}/g1/m2.blif"],
                  "width": 1, "max_width": 1, "max_iterations": 3}}
              ]
            }}"#,
            d = spec.display()
        ),
    )
    .unwrap();
    let batch_mixed = mmflow()
        .args(["batch", mixed.to_str().unwrap(), "--no-cache"])
        .output()
        .unwrap();
    assert!(
        !batch_mixed.status.success(),
        "failed 3-mode job fails batch"
    );
    let submit_mixed = mmflow()
        .args(["submit", mixed.to_str().unwrap(), "--connect", &connect])
        .output()
        .unwrap();
    assert!(
        !submit_mixed.status.success(),
        "failed 3-mode job fails submit"
    );
    assert_eq!(
        submit_mixed.stdout, batch_mixed.stdout,
        "3-mode error records stream byte-identically too"
    );
    let text = String::from_utf8(submit_mixed.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "every job has a record: {lines:?}");
    assert!(
        lines[0].contains(r#""name":"good""#)
            && lines[0].contains(r#""flow":"pair""#)
            && lines[0].contains(r#""status":"ok""#),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].contains(r#""name":"doomed""#)
            && lines[1].contains(r#""status":"error""#)
            && lines[1].contains(r#""stage":"route""#),
        "{}",
        lines[1]
    );
    assert_eq!(
        text.matches(r#""status":"error""#).count(),
        1,
        "exactly one structured error record"
    );

    run_ok(&["submit", "--connect", &connect, "--shutdown"]);
    let mut server = server;
    let t0 = Instant::now();
    while server.0.try_wait().unwrap().is_none() {
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "server did not drain after shutdown"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_submits_stay_byte_identical_and_fair() {
    let root = std::env::temp_dir().join(format!("mmflow_e2e_storm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let spec = write_spec_dir(&root, 2, 2);
    let spec_str = spec.to_str().unwrap();
    let socket = root.join("mmflow.sock");

    let batch = run_ok(&[
        "batch",
        spec_str,
        "--no-cache",
        "--width",
        "12",
        "--effort",
        "1",
    ]);

    let server = start_server(&socket);
    let connect = format!("unix:{}", socket.display());

    // Four submit processes race on the same server; every stdout must
    // be the reference bytes, in order, whatever the interleaving on
    // the shared worker shards.
    let children: Vec<Child> = (0..4)
        .map(|i| {
            mmflow()
                .args([
                    "submit",
                    spec_str,
                    "--connect",
                    &connect,
                    "--width",
                    "12",
                    "--effort",
                    "1",
                    "--priority",
                    &format!("{}", 1 + i % 3),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn mmflow submit")
        })
        .collect();
    for child in children {
        let out = child.wait_with_output().expect("submit output");
        assert!(out.status.success(), "concurrent submit failed");
        assert_eq!(
            out.stdout, batch.stdout,
            "contended stream must be byte-identical to batch output"
        );
    }

    run_ok(&["submit", "--connect", &connect, "--shutdown"]);
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}
