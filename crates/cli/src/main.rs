//! `mmflow` — the fully automated multi-mode tool flow from the command
//! line.
//!
//! ```text
//! mmflow merge a.blif b.blif [...]   run the DCS flow on BLIF mode circuits
//! mmflow mdr   a.blif b.blif [...]   run the MDR baseline
//! mmflow batch SPEC [...]            run a whole suite through mm-engine
//! mmflow pareto SPEC [...]           sweep the wirelength-vs-delay blend
//! mmflow serve --listen ADDR [...]   long-running batch service (mm-serve)
//! mmflow submit SPEC --connect ADDR  submit a batch to a running service
//! mmflow bench [--json]              measure the hot paths (BENCH_*.json)
//! mmflow cache gc [...]              evict old/oversized stage-cache entries
//! mmflow stats a.blif                print circuit statistics
//! mmflow gen   <SUITE> DIR           write a benchmark suite as BLIF files
//! ```

use mm_flow::{DcsFlow, FlowOptions, MdrFlow, MultiModeInput, WidthChoice};
use mm_netlist::{blif, LutCircuit};
use mm_place::CostKind;
use std::error::Error;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
mmflow — combined implementation of multi-mode circuits (DATE'13 flow)

USAGE:
  mmflow merge <MODE.blif>... [OPTIONS]   DCS flow: merge modes, report the
                                          parameterized configuration
  mmflow mdr   <MODE.blif>... [OPTIONS]   MDR baseline: separate configs
  mmflow batch <SPEC> [OPTIONS]           run a batch of multi-mode problems
                                          in parallel with stage caching;
                                          SPEC is a JSON spec file, a
                                          directory of BLIF mode groups, or
                                          suite:<NAME>[:<modes>] with NAME
                                          one of regexp|fir|mcnc|deeplogic|
                                          broadcast (modes per problem,
                                          default 2)
  mmflow pareto <SPEC> [OPTIONS]          run every problem of a batch once
                                          per timing-cost alpha and print a
                                          wirelength-vs-critical-path table;
                                          legs share the stage cache
  mmflow serve --listen <ADDR>            run the long-running batch service:
                                          one shared engine + stage cache,
                                          JSONL protocol over a Unix or TCP
                                          socket, graceful drain on shutdown
  mmflow submit <SPEC> --connect <ADDR>   submit a batch to a running service;
                                          result records stream to stdout
                                          byte-identical to `mmflow batch`
  mmflow bench [--json] [--smoke]         measure router/placer/flow/serve/
                                          sta hot paths: baseline vs
                                          optimized wall-clock, throughput,
                                          cache hit rates and the
                                          timing-driven critical-path win
  mmflow cache gc [--max-bytes N]         evict stage-cache entries, least
                [--max-age-days D]        recently used first, until under
                                          the limits
  mmflow stats <CIRCUIT.blif>...          circuit statistics
  mmflow gen <SUITE> <DIR>                write a benchmark suite as BLIF;
                                          SUITE is one of
                                          regexp|fir|mcnc|deeplogic|broadcast

OPTIONS:
  -k <N>           LUT input count (default 4)
  --cost <C>       combined-placement cost: wl | edge | hybrid:<lambda>
                   | timing:<alpha> (default wl); timing blends bounding-box
                   wirelength with criticality-weighted connection length
                   (alpha 0 = pure wirelength, 1 = pure delay) and records
                   per-mode critical paths
  --width <W>      fixed channel width (default: minimum + 20%)
  --seed <S>       placer seed (default 0x5eed)
  --effort <E>     annealing effort (VPR inner_num, default 1)
  --bits <N>       print the first N parameterized bit expressions

BATCH OPTIONS:
  -k <N>           LUT width for directory BLIFs and generated suites
                   (default 4; spec files may set their own \"k\")
  --modes <N>      modes per problem for generated suites (default 2;
                   equivalent to the suite:<name>:<N> spelling)
  --threads <N>    worker threads (default: one per CPU; 1 = serial)
  --serial         shorthand for --threads 1
  --cache <DIR>    stage-cache directory (default .mmcache)
  --no-cache       disable the stage cache
  --jobs <N>       only run the first N jobs of the batch
  --out <FILE>     write JSONL results to FILE instead of stdout
  --steiner-fanout <N>
                   route nets with N or more sinks along a rectilinear
                   Steiner topology (0 = off, the default)
  --emit-stage-times
                   append per-stage timings to every record as
                   stages: [{name, ms, cache}] (off by default so
                   record bytes stay reproducible)

PARETO OPTIONS:
  --alphas <LIST>  comma-separated timing alphas to sweep
                   (default 0,0.25,0.5,0.75,1)
  plus all BATCH OPTIONS; with --out, per-leg JSONL records (including
  per-mode critical_paths) are written to FILE

SERVE OPTIONS:
  --listen <ADDR>       unix:<path> or tcp:<host:port> (required)
  --threads <N>         worker threads across all shards (default: one
                        per CPU)
  --workers <N>         worker groups (shards) jobs are routed to by
                        content fingerprint (default: threads/2, max 8)
  --queue-depth <N>     queued jobs each shard admits before batches
                        bounce with a busy frame (default 256)
  --cache <DIR>         stage-cache directory (default .mmcache)
  --no-cache            disable the stage cache
  --max-connections <N> concurrent connections; excess clients get a
                        busy frame and are closed (default 8)
  --slo-ms <MS>         p95 batch-latency SLO; once a shard's observed
                        p95 exceeds it, low-priority batches are shed
                        with a busy frame carrying the p95 (priority 9
                        is never shed; default: off)
  --deadline-ms <MS>    per-job execution deadline; a stuck job is
                        answered with a structured timeout record while
                        the shard keeps serving (default 30000, 0 = off)
  --fault-spec <SPEC>   arm deterministic fault injection, e.g.
                        seed=7,worker_panic=0.1,conn_drop=0.05; points:
                        cache_read_io cache_write_partial worker_panic
                        job_stall conn_drop (bare name = always fire)

SUBMIT OPTIONS:
  --connect <ADDR>  the service address (required); connection attempts
                    time out after 10 s with a structured error
  --retries <N>     resubmit up to N times on busy frames or dropped
                    connections, with jittered exponential backoff;
                    records stream exactly once (default 0)
  -k <N>            LUT width for directory BLIFs and generated suites
  --modes <N>       modes per problem for generated suites
  --jobs <N>        only run the first N jobs of the batch
  --priority <N>    scheduling priority 0..=9, higher runs first
                    (default 1)
  --emit-stage-times
                    ask the server to append per-stage timings to each
                    record, as in batch
  --seed/--width/--effort/--max-iterations/--max-width/--steiner-fanout
                    flow overrides, as in batch specs
  --out <FILE>      write JSONL results to FILE instead of stdout
  --shutdown        ask the server to drain and exit (after the batch,
                    or alone when no SPEC is given)

BENCH OPTIONS:
  --json           write BENCH_router.json, BENCH_place.json,
                   BENCH_flow.json, BENCH_serve.json and BENCH_sta.json
  --out-dir <DIR>  where to write them (default .)
  --suite <S>      run one workload: router|place|flow|serve|sta|chaos
                   (default all; chaos runs the serve workload, whose
                   report carries the fault-injection storm section)
  --smoke          tiny CI-sized workload
  --quick          alias for --smoke
  --reps <N>       timed repetitions per measurement
  --threads <N>    worker threads for the flow/serve workloads
                   (default: one per CPU); recorded in every report

CACHE GC OPTIONS:
  --cache <DIR>        stage-cache directory (default .mmcache)
  --max-bytes <N>      size budget; suffixes k/m/g accepted
  --max-age-days <D>   evict entries older than D days

Batch results stream to stdout as one JSON record per job, in job order,
byte-identical for serial, parallel and cached executions; the summary
(timings + cache counters) goes to stderr. Exits non-zero if a job fails.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct CommonOptions {
    k: usize,
    cost: CostKind,
    flow: FlowOptions,
    show_bits: usize,
    files: Vec<String>,
}

fn parse_common(args: &[String]) -> Result<CommonOptions, Box<dyn Error>> {
    let mut options = CommonOptions {
        k: 4,
        cost: CostKind::WireLength,
        flow: FlowOptions::default(),
        show_bits: 0,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-k" => options.k = next_value(&mut it, "-k")?.parse()?,
            "--cost" => {
                let v = next_value(&mut it, "--cost")?;
                options.cost = parse_cost(v)?;
            }
            "--width" => {
                options.flow.width = WidthChoice::Fixed(next_value(&mut it, "--width")?.parse()?);
            }
            "--seed" => options.flow.placer.seed = next_value(&mut it, "--seed")?.parse()?,
            "--effort" => {
                options.flow.placer.inner_num = next_value(&mut it, "--effort")?.parse()?;
            }
            "--bits" => options.show_bits = next_value(&mut it, "--bits")?.parse()?,
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'").into());
            }
            file => options.files.push(file.to_string()),
        }
    }
    Ok(options)
}

fn next_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a String, Box<dyn Error>> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value").into())
}

/// Parses `--cost` values through the engine's validated parser, so the
/// CLI rejects the same NaN/negative/non-finite hybrid weights batch
/// specs do (those weights fingerprint into cache keys).
fn parse_cost(v: &str) -> Result<CostKind, Box<dyn Error>> {
    match mm_engine::FlowKind::parse("dcs", Some(v))? {
        mm_engine::FlowKind::Dcs(cost) => Ok(cost),
        _ => unreachable!("parsing the dcs flow yields a dcs kind"),
    }
}

fn load_circuits(files: &[String], k: usize) -> Result<Vec<LutCircuit>, Box<dyn Error>> {
    if files.is_empty() {
        return Err("no input files".into());
    }
    files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
            blif::from_blif(&text, k).map_err(|e| -> Box<dyn Error> { format!("{f}: {e}").into() })
        })
        .collect()
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    match command.as_str() {
        "merge" => cmd_merge(&args[1..]),
        "mdr" => cmd_mdr(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "pareto" => cmd_pareto(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "submit" => cmd_submit(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "cache" => cmd_cache(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'").into()),
    }
}

fn cmd_merge(args: &[String]) -> Result<(), Box<dyn Error>> {
    let options = parse_common(args)?;
    let circuits = load_circuits(&options.files, options.k)?;
    for (i, c) in circuits.iter().enumerate() {
        println!("mode {i}: {} — {}", c.name(), c.stats());
    }
    let input = MultiModeInput::new(circuits)?;
    let result = DcsFlow::new(options.flow)
        .with_cost(options.cost)
        .run(&input)?;

    let stats = result.tunable.stats();
    println!();
    println!(
        "region:   {0}x{0} logic blocks, channel width {1}",
        result.arch.grid, result.arch.channel_width
    );
    println!("tunable:  {stats}");
    let dcs = result.dcs_cost();
    let mdr = result.mdr_cost();
    println!("MDR rewrite:  {mdr}");
    println!("DCS rewrite:  {dcs}");
    println!("speed-up:     {:.2}x", mm_bitstream::speedup(&mdr, &dcs));
    for m in 0..input.mode_count() {
        println!("wires in mode {m}: {}", result.wires_in_mode(m));
    }
    if options.show_bits > 0 {
        println!();
        println!("parameterized routing bits (first {}):", options.show_bits);
        for (switch, expr) in result
            .param
            .parameterized_expressions()
            .take(options.show_bits)
        {
            println!("  bit[{}] = {expr}", switch.index());
        }
    }
    Ok(())
}

fn cmd_mdr(args: &[String]) -> Result<(), Box<dyn Error>> {
    let options = parse_common(args)?;
    let circuits = load_circuits(&options.files, options.k)?;
    for (i, c) in circuits.iter().enumerate() {
        println!("mode {i}: {} — {}", c.name(), c.stats());
    }
    let input = MultiModeInput::new(circuits)?;
    let result = MdrFlow::new(options.flow).run(&input)?;
    println!();
    println!(
        "region:   {0}x{0} logic blocks, channel width {1}",
        result.arch.grid, result.arch.channel_width
    );
    println!("MDR rewrite:            {}", result.mdr_cost());
    println!("diff rewrite (average): {}", result.average_diff_cost());
    for m in 0..input.mode_count() {
        println!("wires in mode {m}: {}", result.wires_in_mode(m));
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), Box<dyn Error>> {
    use mm_engine::{load_spec_with_modes, Engine, EngineOptions};
    use std::io::Write;

    let mut spec: Option<String> = None;
    let mut threads = 0usize;
    let mut cache_dir: Option<std::path::PathBuf> = Some(".mmcache".into());
    let mut max_jobs = usize::MAX;
    let mut out_path: Option<String> = None;
    let mut flow = FlowOptions::default();
    let mut k = 4usize;
    let mut modes: Option<usize> = None;
    let mut emit_stage_times = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-k" => k = next_value(&mut it, "-k")?.parse()?,
            "--modes" => modes = Some(next_value(&mut it, "--modes")?.parse()?),
            "--emit-stage-times" => emit_stage_times = true,
            "--threads" => threads = next_value(&mut it, "--threads")?.parse()?,
            "--serial" => threads = 1,
            "--cache" => {
                cache_dir = Some(next_value(&mut it, "--cache")?.into());
            }
            "--no-cache" => cache_dir = None,
            "--jobs" => max_jobs = next_value(&mut it, "--jobs")?.parse()?,
            "--out" => out_path = Some(next_value(&mut it, "--out")?.clone()),
            "--width" => {
                flow.width = WidthChoice::Fixed(next_value(&mut it, "--width")?.parse()?);
            }
            "--seed" => flow.placer.seed = next_value(&mut it, "--seed")?.parse()?,
            "--effort" => flow.placer.inner_num = next_value(&mut it, "--effort")?.parse()?,
            "--steiner-fanout" => {
                flow.router.steiner_fanout = next_value(&mut it, "--steiner-fanout")?.parse()?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown batch option '{other}'").into());
            }
            positional if spec.is_none() => spec = Some(positional.to_string()),
            extra => return Err(format!("unexpected argument '{extra}'").into()),
        }
    }
    let spec = spec.ok_or("batch needs a spec: a JSON file, a directory, or suite:<name>")?;

    let mut batch = load_spec_with_modes(&spec, &flow, k, modes)?;
    batch.jobs.truncate(max_jobs);
    let job_count = batch.jobs.len();
    eprintln!("batch: {} jobs from {spec}", job_count);

    let engine = Engine::new(EngineOptions {
        threads,
        cache_dir,
        ..Default::default()
    })?;
    let mut sink: Box<dyn Write + Send> = match &out_path {
        Some(path) => Box::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => Box::new(std::io::stdout()),
    };
    // A failed record write (disk full, broken pipe) must fail the run —
    // and cancel the jobs that have not started yet, instead of burning
    // hours computing results nobody can read.
    let cancelled = std::sync::atomic::AtomicBool::new(false);
    let mut write_error: Option<std::io::Error> = None;
    let report = engine.run_streamed_cancellable(batch.jobs, Some(&cancelled), |r| {
        if write_error.is_none() {
            let record = if emit_stage_times {
                r.to_json_line_with_stages()
            } else {
                r.to_json_line()
            };
            if let Err(e) = writeln!(sink, "{record}") {
                write_error = Some(e);
                cancelled.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        }
    });
    if let Some(e) = write_error {
        return Err(format!("writing results: {e}").into());
    }
    sink.flush()?;

    eprintln!("{}", report.summary_json());
    eprintln!(
        "wall {:?} vs serial-estimate {:?} on {} threads ({} results, {} placements from cache)",
        report.wall,
        report.serial_estimate(),
        report.threads,
        report.stats.results_from_cache,
        report.stats.placements_from_cache,
    );
    if report.stats.failed > 0 {
        return Err(format!("{} of {} jobs failed", report.stats.failed, job_count).into());
    }
    Ok(())
}

fn cmd_pareto(args: &[String]) -> Result<(), Box<dyn Error>> {
    use mm_engine::{load_spec_with_modes, Engine, EngineOptions, FlowKind, Job, JobOutcome};
    use std::io::Write;

    let mut spec: Option<String> = None;
    let mut alphas: Vec<f64> = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    let mut threads = 0usize;
    let mut cache_dir: Option<std::path::PathBuf> = Some(".mmcache".into());
    let mut max_jobs = usize::MAX;
    let mut out_path: Option<String> = None;
    let mut flow = FlowOptions::default();
    let mut k = 4usize;
    let mut modes: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-k" => k = next_value(&mut it, "-k")?.parse()?,
            "--modes" => modes = Some(next_value(&mut it, "--modes")?.parse()?),
            "--alphas" => {
                alphas = next_value(&mut it, "--alphas")?
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<_, _>>()?;
                if alphas.is_empty() {
                    return Err("--alphas needs at least one value".into());
                }
            }
            "--threads" => threads = next_value(&mut it, "--threads")?.parse()?,
            "--serial" => threads = 1,
            "--cache" => cache_dir = Some(next_value(&mut it, "--cache")?.into()),
            "--no-cache" => cache_dir = None,
            "--jobs" => max_jobs = next_value(&mut it, "--jobs")?.parse()?,
            "--out" => out_path = Some(next_value(&mut it, "--out")?.clone()),
            "--width" => {
                flow.width = WidthChoice::Fixed(next_value(&mut it, "--width")?.parse()?);
            }
            "--seed" => flow.placer.seed = next_value(&mut it, "--seed")?.parse()?,
            "--effort" => flow.placer.inner_num = next_value(&mut it, "--effort")?.parse()?,
            "--steiner-fanout" => {
                flow.router.steiner_fanout = next_value(&mut it, "--steiner-fanout")?.parse()?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown pareto option '{other}'").into());
            }
            positional if spec.is_none() => spec = Some(positional.to_string()),
            extra => return Err(format!("unexpected argument '{extra}'").into()),
        }
    }
    let spec = spec.ok_or("pareto needs a spec: a JSON file, a directory, or suite:<name>")?;

    let mut batch = load_spec_with_modes(&spec, &flow, k, modes)?;
    batch.jobs.truncate(max_jobs);
    // Each problem sweeps the wirelength-vs-delay blend: one timing job
    // per alpha (alpha 0 anneals on pure wirelength but still reports
    // the routed critical path). Every leg is content-address-cached,
    // so re-sweeping with more alphas only runs the new legs.
    let mut jobs = Vec::with_capacity(batch.jobs.len() * alphas.len());
    for job in &batch.jobs {
        for &alpha in &alphas {
            let kind = FlowKind::parse("dcs", Some(&format!("timing:{alpha}")))?;
            jobs.push(Job {
                name: format!("{}@timing:{alpha}", job.name),
                circuits: job.circuits.clone(),
                flow: kind,
                options: job.options,
            });
        }
    }
    eprintln!(
        "pareto: {} problems x {} alphas = {} jobs from {spec}",
        batch.jobs.len(),
        alphas.len(),
        jobs.len()
    );

    let engine = Engine::new(EngineOptions {
        threads,
        cache_dir,
        ..Default::default()
    })?;
    let mut sink: Option<Box<dyn Write + Send>> = match &out_path {
        Some(path) => Some(Box::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?))),
        None => None,
    };
    let mut write_error: Option<std::io::Error> = None;
    let report = engine.run_streamed(jobs, |r| {
        if let Some(sink) = sink.as_mut() {
            if write_error.is_none() {
                if let Err(e) = writeln!(sink, "{}", r.to_json_line()) {
                    write_error = Some(e);
                }
            }
        }
    });
    if let Some(e) = write_error {
        return Err(format!("writing results: {e}").into());
    }
    if let Some(mut sink) = sink {
        sink.flush()?;
    }

    let mut rows = Vec::new();
    let mut failed = 0usize;
    for result in &report.results {
        match &result.outcome {
            Ok(JobOutcome::Dcs(s)) => {
                let cps = s.critical_paths.clone().unwrap_or_default();
                let worst = cps.iter().copied().fold(0.0f64, f64::max);
                let mean_wires = s.wires.iter().sum::<usize>() as f64 / s.wires.len().max(1) as f64;
                rows.push(vec![
                    result.name.clone(),
                    format!("{}", s.channel_width),
                    format!("{mean_wires:.1}"),
                    format!("{worst:.0}"),
                ]);
            }
            Ok(_) => {}
            Err(e) => {
                failed += 1;
                rows.push(vec![
                    result.name.clone(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {}", e.message),
                ]);
            }
        }
    }
    print!(
        "{}",
        mm_flow::report::render_table(&["job", "width", "mean wires", "critical path"], &rows)
    );
    eprintln!("{}", report.summary_json());
    if failed > 0 {
        return Err(format!("{failed} of {} jobs failed", report.results.len()).into());
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn Error>> {
    use mm_serve::{Listen, ServeOptions, Server};

    let mut listen: Option<String> = None;
    let mut options = ServeOptions {
        threads: 0,
        cache_dir: Some(".mmcache".into()),
        max_connections: 8,
        ..ServeOptions::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => listen = Some(next_value(&mut it, "--listen")?.clone()),
            "--threads" => options.threads = next_value(&mut it, "--threads")?.parse()?,
            "--workers" => options.workers = next_value(&mut it, "--workers")?.parse()?,
            "--queue-depth" => {
                options.queue_depth = next_value(&mut it, "--queue-depth")?.parse()?;
            }
            "--cache" => options.cache_dir = Some(next_value(&mut it, "--cache")?.into()),
            "--no-cache" => options.cache_dir = None,
            "--max-connections" => {
                options.max_connections = next_value(&mut it, "--max-connections")?.parse()?;
            }
            "--slo-ms" => options.slo_ms = Some(next_value(&mut it, "--slo-ms")?.parse()?),
            "--deadline-ms" => {
                options.deadline_ms = next_value(&mut it, "--deadline-ms")?.parse()?
            }
            "--fault-spec" => {
                options.fault_spec = Some(next_value(&mut it, "--fault-spec")?.clone());
            }
            other => return Err(format!("unknown serve option '{other}'").into()),
        }
    }
    let listen = listen.ok_or("serve needs --listen unix:<path> or tcp:<host:port>")?;
    let listen = Listen::parse(&listen)?;

    let server = Server::bind(&listen, &options)?;
    eprintln!(
        "serve: listening on {} ({} workers in {} shards, queue depth {}, cache {}, \
         {} connection slots)",
        server.listen_addr(),
        server.scheduler().threads(),
        server.scheduler().shards(),
        options.queue_depth,
        options
            .cache_dir
            .as_ref()
            .map_or("disabled".to_string(), |d| d.display().to_string()),
        options.max_connections,
    );
    if let Some(slo) = options.slo_ms {
        eprintln!("serve: shedding low-priority batches above a {slo} ms p95 SLO");
    }
    if options.deadline_ms > 0 {
        eprintln!(
            "serve: {} ms per-job deadline watchdog",
            options.deadline_ms
        );
    }
    if let Some(spec) = &options.fault_spec {
        eprintln!("serve: FAULT INJECTION ARMED ({spec})");
    }
    eprintln!("serve: send {{\"cmd\":\"shutdown\"}} (mmflow submit --shutdown) to drain and exit");
    let report = server.run()?;
    eprintln!(
        "serve: drained — {} connections, {} batches, {} jobs \
         ({} connections and {} batches rejected busy, {} batches shed over SLO, \
         {} jobs purged, {} timed out, {} panicking executions retried)",
        report.connections,
        report.batches,
        report.jobs,
        report.rejected_connections,
        report.rejected_batches,
        report.shed_batches,
        report.purged_jobs,
        report.timed_out_jobs,
        report.panic_retries,
    );
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), Box<dyn Error>> {
    use mm_engine::protocol::BatchRequest;
    use std::io::Write;

    let mut connect: Option<String> = None;
    let mut spec: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut shutdown = false;
    let mut k: Option<usize> = None;
    let mut modes: Option<usize> = None;
    let mut max_jobs: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut width: Option<usize> = None;
    let mut effort: Option<f64> = None;
    let mut max_iterations: Option<usize> = None;
    let mut max_width: Option<usize> = None;
    let mut steiner_fanout: Option<usize> = None;
    let mut priority: Option<u8> = None;
    let mut emit_stage_times = false;
    let mut retries = 0u32;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(next_value(&mut it, "--connect")?.clone()),
            "--out" => out_path = Some(next_value(&mut it, "--out")?.clone()),
            "--shutdown" => shutdown = true,
            "--retries" => retries = next_value(&mut it, "--retries")?.parse()?,
            "-k" => k = Some(next_value(&mut it, "-k")?.parse()?),
            "--modes" => modes = Some(next_value(&mut it, "--modes")?.parse()?),
            "--jobs" => max_jobs = Some(next_value(&mut it, "--jobs")?.parse()?),
            "--priority" => priority = Some(next_value(&mut it, "--priority")?.parse()?),
            "--emit-stage-times" => emit_stage_times = true,
            "--seed" => seed = Some(next_value(&mut it, "--seed")?.parse()?),
            "--width" => width = Some(next_value(&mut it, "--width")?.parse()?),
            "--effort" => effort = Some(next_value(&mut it, "--effort")?.parse()?),
            "--max-iterations" => {
                max_iterations = Some(next_value(&mut it, "--max-iterations")?.parse()?);
            }
            "--max-width" => max_width = Some(next_value(&mut it, "--max-width")?.parse()?),
            "--steiner-fanout" => {
                steiner_fanout = Some(next_value(&mut it, "--steiner-fanout")?.parse()?);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown submit option '{other}'").into());
            }
            positional if spec.is_none() => spec = Some(positional.to_string()),
            extra => return Err(format!("unexpected argument '{extra}'").into()),
        }
    }
    let connect = connect.ok_or("submit needs --connect unix:<path> or tcp:<host:port>")?;
    if spec.is_none() && !shutdown {
        return Err("submit needs a SPEC (or --shutdown alone)".into());
    }

    let mut client = mm_serve::Client::connect(&mm_serve::Listen::parse(&connect)?)?;
    let mut failed_jobs = 0usize;

    if let Some(spec) = spec {
        let mut request = BatchRequest::new(spec);
        request.k = k.unwrap_or(4);
        request.modes = modes;
        request.max_jobs = max_jobs;
        request.seed = seed;
        request.width = width;
        request.effort = effort;
        request.max_iterations = max_iterations;
        request.max_width = max_width;
        request.steiner_fanout = steiner_fanout;
        if let Some(priority) = priority {
            if priority > mm_engine::protocol::MAX_PRIORITY {
                return Err(format!(
                    "--priority must be 0..={}",
                    mm_engine::protocol::MAX_PRIORITY
                )
                .into());
            }
            request.priority = priority;
        }
        request.emit_stage_times = emit_stage_times;

        let mut sink: Box<dyn Write> = match &out_path {
            Some(path) => Box::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
            None => Box::new(std::io::stdout()),
        };
        match client.submit_with_retries(&request, retries, |record| writeln!(sink, "{record}"))? {
            Ok(outcome) => {
                eprintln!("submit: {} jobs accepted", outcome.accepted);
                if outcome.retries > 0 {
                    eprintln!(
                        "submit: succeeded after {} retried submission(s)",
                        outcome.retries
                    );
                }
                if outcome.queued_ahead > 0 {
                    eprintln!("submit: {} jobs were queued ahead", outcome.queued_ahead);
                }
                eprintln!("{}", outcome.summary.to_json());
                failed_jobs = outcome.failed_jobs();
            }
            Err(rejection) => {
                return Err(format!("server rejected the batch: {rejection}").into());
            }
        }
        sink.flush()?;
    }

    if shutdown {
        client.shutdown()?;
        eprintln!("submit: server is draining");
    }

    if failed_jobs > 0 {
        return Err(format!("{failed_jobs} jobs failed").into());
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), Box<dyn Error>> {
    use mm_bench::perf::{flow_perf, placer_perf, router_perf, serve_perf, sta_perf, PerfConfig};

    let mut json = false;
    let mut smoke = false;
    let mut suite = "all".to_string();
    let mut reps: Option<usize> = None;
    let mut threads = 0usize;
    let mut out_dir = std::path::PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--smoke" | "--quick" => smoke = true,
            "--suite" => suite = next_value(&mut it, "--suite")?.clone(),
            "--reps" => reps = Some(next_value(&mut it, "--reps")?.parse()?),
            "--threads" => threads = next_value(&mut it, "--threads")?.parse()?,
            "--out-dir" => out_dir = next_value(&mut it, "--out-dir")?.into(),
            other => return Err(format!("unknown bench option '{other}'").into()),
        }
    }
    let known = ["all", "router", "place", "flow", "serve", "sta", "chaos"];
    if !known.contains(&suite.as_str()) {
        return Err(format!("unknown bench suite '{suite}' (one of {})", known.join("|")).into());
    }
    let runs = |name: &str| suite == "all" || suite == name;
    // The chaos phases live inside the serve workload, so `--suite
    // chaos` runs the serve benchmark (its report carries the `chaos`
    // section either way).
    let run_serve = runs("serve") || suite == "chaos";
    let mut config = PerfConfig::new(smoke);
    if let Some(r) = reps {
        config.reps = r;
    }
    config.threads = threads;

    let mut wrote = Vec::new();
    if json {
        std::fs::create_dir_all(&out_dir)?;
    }
    let mut write_json = |name: &str, text: String| -> std::io::Result<()> {
        if json {
            let path = out_dir.join(name);
            std::fs::write(&path, text + "\n")?;
            wrote.push(path.display().to_string());
        }
        Ok(())
    };

    if runs("router") {
        eprintln!(
            "bench: router workload ({}) ...",
            if smoke { "smoke" } else { "full" }
        );
        let router = router_perf(&config);
        eprintln!(
            "  router: baseline {:.2} ms, optimized {:.2} ms → {:.2}x \
             ({:.1} routes/s, parity {})",
            router.baseline_ms,
            router.optimized_ms,
            router.speedup,
            router.optimized_ops_per_sec,
            if router.parity_ok { "ok" } else { "FAILED" },
        );
        for hf in &router.high_fanout {
            eprintln!(
                "  router[fanout {}]: steiner off {:.2} ms, on {:.2} ms → {:.2}x \
                 (wirelength ratio {:.2}, parity {})",
                hf.fanout,
                hf.off_ms,
                hf.on_ms,
                hf.speedup,
                hf.wirelength_ratio,
                if hf.parity_ok { "ok" } else { "FAILED" },
            );
        }
        if !router.parity_ok || !router.routed {
            return Err("router benchmark failed its parity/routability sanity checks".into());
        }
        if router.high_fanout.iter().any(|h| !h.parity_ok || !h.routed) {
            return Err("high-fanout benchmark failed its parity/routability sanity checks".into());
        }
        write_json("BENCH_router.json", router.to_json())?;
    }
    if runs("place") {
        eprintln!("bench: placer workload ...");
        let place = placer_perf(&config);
        for run in [&place.hybrid, &place.wirelength] {
            eprintln!(
                "  placer[{}]: baseline {:.2} ms, optimized {:.2} ms → {:.2}x \
                 ({:.0} moves/s vs {:.0} moves/s, parity {})",
                run.cost,
                run.baseline_ms,
                run.optimized_ms,
                run.speedup,
                run.baseline_moves_per_sec,
                run.optimized_moves_per_sec,
                if run.parity_ok { "ok" } else { "FAILED" },
            );
        }
        if !place.parity_ok() {
            return Err("placer benchmark failed its parity sanity checks".into());
        }
        write_json("BENCH_place.json", place.to_json())?;
    }
    if runs("flow") {
        eprintln!("bench: flow workload ...");
        let flow = flow_perf(&config);
        eprintln!(
            "  flow: cold {:.2} ms, warm {:.2} ms → {:.2}x; warm stages recomputed {}, \
             pair shared {} placement legs from plain jobs",
            flow.cold_wall_ms,
            flow.warm_wall_ms,
            flow.warm_speedup,
            flow.warm_stages_recomputed,
            flow.pair_placement_hits_from_plain_jobs,
        );
        eprintln!(
            "  flow[{}-mode]: cold {:.2} ms ({:.1} jobs/s), warm {:.2} ms → {:.2}x; \
             warm stages recomputed {}, N=2 parity {}",
            flow.nmodes.modes,
            flow.nmodes.cold_wall_ms,
            flow.nmodes.cold_jobs_per_sec,
            flow.nmodes.warm_wall_ms,
            flow.nmodes.warm_speedup,
            flow.nmodes.warm_stages_recomputed,
            if flow.nmodes.parity_ok {
                "ok"
            } else {
                "FAILED"
            },
        );
        if !flow.nmodes.parity_ok {
            return Err("flow benchmark: run_combined_n(N=2) diverged from run_pair".into());
        }
        let sg = &flow.stagegraph;
        eprintln!(
            "  flow[stagegraph]: cold {:.2} ms, router-only replay {:.2} ms → {:.2}x; \
             {} placement hits, {} upstream recomputed, replay parity {}",
            sg.cold_wall_ms,
            sg.replay_wall_ms,
            sg.replay_speedup,
            sg.replay_placement_hits,
            sg.replay_upstream_recomputed,
            if sg.parity_ok { "ok" } else { "FAILED" },
        );
        if sg.replay_upstream_recomputed > 0 {
            return Err("flow benchmark: router-only replay recomputed a placement node".into());
        }
        if !sg.parity_ok {
            return Err("flow benchmark: stage-graph replay diverged from a cacheless run".into());
        }
        write_json("BENCH_flow.json", flow.to_json())?;
    }
    if run_serve {
        eprintln!("bench: serve workload (real unix socket) ...");
        let serve = serve_perf(&config);
        eprintln!(
            "  serve: cold {:.2} ms ({:.1} jobs/s), warm {:.2} ms ({:.1} jobs/s) → {:.2}x; \
             stream parity {}",
            serve.cold_wall_ms,
            serve.cold_jobs_per_sec,
            serve.warm_wall_ms,
            serve.warm_jobs_per_sec,
            serve.warm_speedup,
            if serve.parity_ok { "ok" } else { "FAILED" },
        );
        let chaos = &serve.chaos;
        eprintln!(
            "  chaos: {} storm batches under '{}' — {} lost, {} duplicated, parity {}; \
             {} client retries, {} panic retries, {} quarantined, {} purged; \
             SLO shed p0 {} time(s), p9 {} (p95 {:.2} ms), recovered {}",
            chaos.storm_batches,
            chaos.fault_spec,
            chaos.records_lost,
            chaos.records_duplicated,
            if chaos.parity_ok { "ok" } else { "FAILED" },
            chaos.client_retries,
            chaos.panic_retries,
            chaos.quarantined,
            chaos.purged_jobs,
            chaos.shed_low_priority,
            chaos.shed_high_priority,
            chaos.slo_observed_p95_ms,
            if chaos.recovered_after_disarm {
                "ok"
            } else {
                "FAILED"
            },
        );
        if !serve.parity_ok {
            return Err("serve benchmark streamed different bytes than the engine".into());
        }
        if !chaos.ok() {
            return Err(
                "chaos benchmark: records were lost/duplicated/diverged or SLO shedding \
                 misbehaved under armed faults"
                    .into(),
            );
        }
        write_json("BENCH_serve.json", serve.to_json())?;
    }
    if runs("sta") {
        eprintln!("bench: sta workload ...");
        let sta = sta_perf(&config);
        eprintln!(
            "  sta: incremental {:.2} us/update vs reference {:.2} us/update → {:.2}x \
             (parity {})",
            sta.incremental_us_per_update,
            sta.reference_us_per_update,
            sta.incremental_speedup,
            if sta.parity_ok { "ok" } else { "FAILED" },
        );
        eprintln!(
            "  sta[flow, {} modes]: critical path {:.0} → {:.0} ({:.2}x), \
             wires {} → {} ({:.2}x)",
            sta.flow.modes,
            sta.flow.baseline_critical_path,
            sta.flow.timing_critical_path,
            sta.flow.critical_path_ratio,
            sta.flow.baseline_wires,
            sta.flow.timing_wires,
            sta.flow.wires_ratio,
        );
        if !sta.parity_ok {
            return Err("sta benchmark: incremental analysis diverged from the reference".into());
        }
        if !sta.flow.improved {
            return Err(
                "sta benchmark: timing-driven flow did not beat the baseline critical path".into(),
            );
        }
        write_json("BENCH_sta.json", sta.to_json())?;
    }
    if !wrote.is_empty() {
        eprintln!("wrote {}", wrote.join(", "));
    }
    Ok(())
}

/// Parses `--max-bytes` values: plain bytes, or with a k/m/g suffix.
fn parse_bytes(s: &str) -> Result<u64, Box<dyn Error>> {
    let (digits, mult) = match s.chars().last() {
        Some('k' | 'K') => (&s[..s.len() - 1], 1u64 << 10),
        Some('m' | 'M') => (&s[..s.len() - 1], 1 << 20),
        Some('g' | 'G') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad byte size '{s}' (e.g. 500m, 2g, 1048576)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("byte size '{s}' overflows").into())
}

fn cmd_cache(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(sub) = args.first() else {
        return Err("cache needs a subcommand: gc".into());
    };
    if sub != "gc" {
        return Err(format!("unknown cache subcommand '{sub}' (gc)").into());
    }
    let mut cache_dir = std::path::PathBuf::from(".mmcache");
    let mut max_bytes: Option<u64> = None;
    let mut max_age: Option<std::time::Duration> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache" => cache_dir = next_value(&mut it, "--cache")?.into(),
            "--max-bytes" => max_bytes = Some(parse_bytes(next_value(&mut it, "--max-bytes")?)?),
            "--max-age-days" => {
                let days: f64 = next_value(&mut it, "--max-age-days")?.parse()?;
                max_age = Some(std::time::Duration::from_secs_f64(days * 86_400.0));
            }
            other => return Err(format!("unknown cache gc option '{other}'").into()),
        }
    }
    if !cache_dir.exists() {
        return Err(format!("cache directory '{}' does not exist", cache_dir.display()).into());
    }
    let cache = mm_engine::StageCache::open(&cache_dir)?;
    let summary = cache.gc(max_bytes, max_age)?;
    println!(
        "cache gc: scanned {} entries ({} bytes), evicted {} ({} bytes), {} bytes remain",
        summary.scanned,
        summary.bytes_before,
        summary.evicted,
        summary.bytes_evicted,
        summary.bytes_after(),
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), Box<dyn Error>> {
    let options = parse_common(args)?;
    for (file, c) in options
        .files
        .iter()
        .zip(load_circuits(&options.files, options.k)?)
    {
        println!("{file}: {} — {}", c.name(), c.stats());
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), Box<dyn Error>> {
    let [suite, dir] = args else {
        return Err("usage: mmflow gen <regexp|fir|mcnc|deeplogic|broadcast> <DIR>".into());
    };
    let circuits = match suite.as_str() {
        "regexp" => mm_gen::regexp_suite(4),
        "fir" => mm_gen::fir_suite(4),
        "mcnc" => mm_gen::mcnc_suite(4),
        "deeplogic" => mm_gen::deeplogic_suite(4),
        "broadcast" => mm_gen::broadcast_suite(4),
        other => return Err(format!("unknown suite '{other}'").into()),
    };
    std::fs::create_dir_all(dir)?;
    for c in &circuits {
        let path = Path::new(dir).join(format!("{}.blif", c.name()));
        std::fs::write(&path, blif::to_blif(c))?;
        println!("wrote {} ({} LUTs)", path.display(), c.lut_count());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_options() {
        let o = parse_common(&strings(&[
            "a.blif", "-k", "5", "--cost", "edge", "--width", "12", "--seed", "9", "--bits", "4",
        ]))
        .unwrap();
        assert_eq!(o.k, 5);
        assert_eq!(o.cost, CostKind::EdgeMatching);
        assert_eq!(o.flow.width, WidthChoice::Fixed(12));
        assert_eq!(o.flow.placer.seed, 9);
        assert_eq!(o.show_bits, 4);
        assert_eq!(o.files, vec!["a.blif"]);
    }

    #[test]
    fn parses_hybrid_cost() {
        let o = parse_common(&strings(&["--cost", "hybrid:1.5"])).unwrap();
        match o.cost {
            CostKind::Hybrid { edge_weight, .. } => assert!((edge_weight - 1.5).abs() < 1e-12),
            other => panic!("expected hybrid, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_common(&strings(&["--cost", "banana"])).is_err());
        assert!(parse_common(&strings(&["--width"])).is_err());
        assert!(parse_common(&strings(&["--frobnicate"])).is_err());
        assert!(run(&strings(&["explode"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_and_stats_roundtrip() {
        let dir = std::env::temp_dir().join("mmflow_test_gen");
        let _ = std::fs::remove_dir_all(&dir);
        // Generating all suites is slow; use stats on a hand-written file.
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("toy.blif");
        std::fs::write(
            &file,
            ".model toy\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
        )
        .unwrap();
        run(&strings(&["stats", file.to_str().unwrap()])).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
