//! The routing-resource graph (RRG).
//!
//! As in VPR, the routing fabric is "a standard representation of the
//! routing infrastructure called the routing resource graph" (paper
//! §IV-B): a directed graph whose nodes are pins and wire segments and
//! whose edges are programmable switches. Every programmable switch owns
//! one configuration bit; the multi-mode flow later expresses those bits
//! as Boolean functions of the mode bits.
//!
//! Topology produced here:
//!
//! * one `SOURCE → OPIN` and `IPIN → SINK` pair per block pin group (these
//!   edges are hard-wired, not configurable);
//! * logic-block output pins drive `Fc_out · W` tracks in each of the four
//!   adjacent channels through buffered switches (one bit each);
//! * logic-block input pin `i` listens on side `i mod 4` of the block and
//!   is fed from `Fc_in · W` tracks through one-hot input-mux bits;
//! * the `k` LUT input pins are logically equivalent, so they converge on
//!   a single `SINK` of capacity `k`;
//! * IO pads connect to their single adjacent channel;
//! * switch blocks use the disjoint (planar) pattern with Fs = 3: track
//!   `t` connects to track `t` of the other sides through bidirectional
//!   pass-transistor switches — one bit shared by both directions.

use crate::{Architecture, Site};
use std::fmt;

/// Identifier of a node in the routing-resource graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RrNodeId(u32);

impl RrNodeId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a dense index. Ids are dense: `node_ids()`
    /// yields exactly `0..node_count`, so `from_index(i).index() == i`.
    /// Using an index `>= node_count` of the graph it is used with will
    /// panic on first access.
    #[must_use]
    pub fn from_index(index: u32) -> Self {
        Self(index)
    }
}

impl fmt::Display for RrNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rr{}", self.0)
    }
}

/// Identifier of a programmable switch (= one routing configuration bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(u32);

impl SwitchId {
    /// The raw index of the configuration bit.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The role of an RRG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrKind {
    /// Net source inside a block.
    Source,
    /// Block output pin.
    Opin,
    /// Block input pin.
    Ipin,
    /// Net sink inside a block (capacity = number of equivalent pins).
    Sink,
    /// Horizontal wire segment (`track` in the channel north of row `y`).
    ChanX,
    /// Vertical wire segment (`track` in the channel east of column `x`).
    ChanY,
}

/// One routing-resource node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrNode {
    /// Node role.
    pub kind: RrKind,
    /// Representative x coordinate (for distance estimates).
    pub x: u16,
    /// Representative y coordinate.
    pub y: u16,
    /// Track index for channel nodes, subsite for IO pin nodes, pin index
    /// for logic IPINs; 0 otherwise.
    pub aux: u16,
    /// How many distinct nets may legally use the node.
    pub capacity: u16,
}

/// A directed edge of the RRG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrEdge {
    /// Target node.
    pub to: RrNodeId,
    /// The configuration bit that turns the switch on, or `None` for
    /// hard-wired connections (`SOURCE→OPIN`, `IPIN→SINK`).
    pub switch: Option<SwitchId>,
}

/// The routing-resource graph of an [`Architecture`].
///
/// # Example
///
/// ```
/// use mm_arch::{Architecture, RoutingGraph};
///
/// let arch = Architecture::new(4, 4, 6);
/// let rrg = RoutingGraph::build(&arch);
/// assert!(rrg.node_count() > 0);
/// // Every routing bit belongs to exactly one switch.
/// assert!(rrg.switch_count() > 100);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingGraph {
    arch: Architecture,
    nodes: Vec<RrNode>,
    edge_start: Vec<u32>,
    edges: Vec<RrEdge>,
    switch_count: u32,
    wire_count: usize,
}

/// Incremental builder state.
struct Builder {
    nodes: Vec<RrNode>,
    adj: Vec<Vec<RrEdge>>,
    next_switch: u32,
}

impl Builder {
    fn add_node(&mut self, node: RrNode) -> RrNodeId {
        let id = RrNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.adj.push(Vec::new());
        id
    }

    fn hard_edge(&mut self, from: RrNodeId, to: RrNodeId) {
        self.adj[from.index()].push(RrEdge { to, switch: None });
    }

    fn switched_edge(&mut self, from: RrNodeId, to: RrNodeId) -> SwitchId {
        let s = SwitchId(self.next_switch);
        self.next_switch += 1;
        self.adj[from.index()].push(RrEdge {
            to,
            switch: Some(s),
        });
        s
    }

    /// Bidirectional pass-transistor: two directed edges, one shared bit.
    fn bidi_edge(&mut self, a: RrNodeId, b: RrNodeId) {
        let s = SwitchId(self.next_switch);
        self.next_switch += 1;
        self.adj[a.index()].push(RrEdge {
            to: b,
            switch: Some(s),
        });
        self.adj[b.index()].push(RrEdge {
            to: a,
            switch: Some(s),
        });
    }
}

impl RoutingGraph {
    /// Builds the RRG for an architecture.
    ///
    /// # Panics
    ///
    /// Panics if the architecture is degenerate (zero-sized grid).
    #[must_use]
    pub fn build(arch: &Architecture) -> Self {
        let n = arch.grid;
        let w = arch.channel_width;
        assert!(n >= 1 && w >= 1);
        let mut b = Builder {
            nodes: Vec::new(),
            adj: Vec::new(),
            next_switch: 0,
        };

        // ---- wire nodes ---------------------------------------------------
        // chanx(x, y): x in 1..=n, y in 0..=n. chany(x, y): x in 0..=n,
        // y in 1..=n. Stored in a dense id map computed up front.
        let chanx_id = |x: usize, y: usize, t: usize| -> usize {
            debug_assert!((1..=n).contains(&x) && y <= n && t < w);
            ((y * n) + (x - 1)) * w + t
        };
        let chanx_total = n * (n + 1) * w;
        let chany_id =
            |x: usize, y: usize, t: usize| -> usize { ((x * n) + (y - 1)) * w + t + chanx_total };
        let wire_total = 2 * chanx_total;

        for y in 0..=n {
            for x in 1..=n {
                for t in 0..w {
                    let id = b.add_node(RrNode {
                        kind: RrKind::ChanX,
                        x: x as u16,
                        y: y as u16,
                        aux: t as u16,
                        capacity: 1,
                    });
                    debug_assert_eq!(id.index(), chanx_id(x, y, t));
                }
            }
        }
        for x in 0..=n {
            for y in 1..=n {
                for t in 0..w {
                    let id = b.add_node(RrNode {
                        kind: RrKind::ChanY,
                        x: x as u16,
                        y: y as u16,
                        aux: t as u16,
                        capacity: 1,
                    });
                    debug_assert_eq!(id.index(), chany_id(x, y, t));
                }
            }
        }
        let wire = |idx: usize| RrNodeId(idx as u32);

        // Track selections for connection blocks: a *contiguous* run of
        // tracks, staggered by position so that different pins do not all
        // crowd the same tracks. Contiguity matters: the Wilton pattern
        // changes the track parity on every turn, so a pin reachable only
        // on a single-parity track set could become unreachable. At least
        // two consecutive tracks guarantee both parities.
        let pick_tracks = |frac: f64, stagger: usize| -> Vec<usize> {
            let count = ((frac * w as f64).round() as usize).clamp(2.min(w), w);
            (0..count).map(|i| (stagger + i) % w).collect()
        };

        // ---- logic blocks ---------------------------------------------------
        let mut clb_source = vec![RrNodeId(0); n * n];
        let mut clb_sink = vec![RrNodeId(0); n * n];
        let clb_idx = |x: usize, y: usize| (y - 1) * n + (x - 1);
        for y in 1..=n {
            for x in 1..=n {
                let source = b.add_node(RrNode {
                    kind: RrKind::Source,
                    x: x as u16,
                    y: y as u16,
                    aux: 0,
                    capacity: 1,
                });
                let opin = b.add_node(RrNode {
                    kind: RrKind::Opin,
                    x: x as u16,
                    y: y as u16,
                    aux: 0,
                    capacity: 1,
                });
                b.hard_edge(source, opin);
                let sink = b.add_node(RrNode {
                    kind: RrKind::Sink,
                    x: x as u16,
                    y: y as u16,
                    aux: 0,
                    capacity: arch.k as u16,
                });
                clb_source[clb_idx(x, y)] = source;
                clb_sink[clb_idx(x, y)] = sink;

                // Output pin → all four adjacent channels.
                let stagger = x * 7 + y * 13;
                for t in pick_tracks(arch.fc_out, stagger) {
                    b.switched_edge(opin, wire(chanx_id(x, y - 1, t)));
                    b.switched_edge(opin, wire(chanx_id(x, y, t)));
                    b.switched_edge(opin, wire(chany_id(x - 1, y, t)));
                    b.switched_edge(opin, wire(chany_id(x, y, t)));
                }

                // Input pins, one per side: 0 south, 1 east, 2 north,
                // 3 west, cycling if k > 4.
                for pin in 0..arch.k {
                    let ipin = b.add_node(RrNode {
                        kind: RrKind::Ipin,
                        x: x as u16,
                        y: y as u16,
                        aux: pin as u16,
                        capacity: 1,
                    });
                    b.hard_edge(ipin, sink);
                    let stagger = x * 11 + y * 17 + pin * 3;
                    for t in pick_tracks(arch.fc_in, stagger) {
                        let w_id = match pin % 4 {
                            0 => chanx_id(x, y - 1, t),
                            1 => chany_id(x, y, t),
                            2 => chanx_id(x, y, t),
                            _ => chany_id(x - 1, y, t),
                        };
                        b.switched_edge(wire(w_id), ipin);
                    }
                }
            }
        }

        // ---- IO pads ---------------------------------------------------------
        // Sides: bottom (x,0) → chanx(x,0); top (x,n+1) → chanx(x,n);
        // left (0,y) → chany(0,y); right (n+1,y) → chany(n,y).
        let cap = arch.io_capacity;
        let mut io_source: Vec<RrNodeId> = Vec::with_capacity(4 * n * cap);
        let mut io_sink: Vec<RrNodeId> = Vec::with_capacity(4 * n * cap);
        // Index helper mirrors `Architecture::io_sites` order:
        // bottom, top, left, right, positions 1..=n, then subsites.
        let mut io_positions: Vec<(usize, usize)> = Vec::new();
        io_positions.extend((1..=n).map(|x| (x, 0)));
        io_positions.extend((1..=n).map(|x| (x, n + 1)));
        io_positions.extend((1..=n).map(|y| (0, y)));
        io_positions.extend((1..=n).map(|y| (n + 1, y)));
        for &(x, y) in &io_positions {
            let channel: Vec<usize> = (0..w)
                .map(|t| {
                    if y == 0 {
                        chanx_id(x, 0, t)
                    } else if y == n + 1 {
                        chanx_id(x, n, t)
                    } else if x == 0 {
                        chany_id(0, y, t)
                    } else {
                        chany_id(n, y, t)
                    }
                })
                .collect();
            for sub in 0..cap {
                let source = b.add_node(RrNode {
                    kind: RrKind::Source,
                    x: x as u16,
                    y: y as u16,
                    aux: sub as u16,
                    capacity: 1,
                });
                let opin = b.add_node(RrNode {
                    kind: RrKind::Opin,
                    x: x as u16,
                    y: y as u16,
                    aux: sub as u16,
                    capacity: 1,
                });
                b.hard_edge(source, opin);
                let ipin = b.add_node(RrNode {
                    kind: RrKind::Ipin,
                    x: x as u16,
                    y: y as u16,
                    aux: sub as u16,
                    capacity: 1,
                });
                let sink = b.add_node(RrNode {
                    kind: RrKind::Sink,
                    x: x as u16,
                    y: y as u16,
                    aux: sub as u16,
                    capacity: 1,
                });
                b.hard_edge(ipin, sink);
                let stagger = x * 5 + y * 3 + sub * 7;
                for i in pick_tracks(arch.fc_out, stagger) {
                    b.switched_edge(opin, wire(channel[i]));
                }
                for i in pick_tracks(arch.fc_in, stagger + 1) {
                    b.switched_edge(wire(channel[i]), ipin);
                }
                io_source.push(source);
                io_sink.push(sink);
            }
        }

        // ---- switch blocks ---------------------------------------------------
        // Side order: 0 west, 1 east, 2 south, 3 north. Straight pairs
        // (W–E, S–N) always keep the track; in the Wilton pattern turn
        // pairs rotate the track by ±1 so routes can migrate between
        // tracks (essential for routability at fractional Fc).
        let turn_shift = |i: usize, j: usize| -> isize {
            match arch.switch_pattern {
                crate::SwitchPattern::Disjoint => 0,
                crate::SwitchPattern::Wilton => match (i, j) {
                    (0, 1) | (2, 3) => 0,  // straight
                    (0, 2) | (1, 3) => 1,  // W–S, E–N: +1
                    (0, 3) | (1, 2) => -1, // W–N, E–S: −1
                    _ => unreachable!("i < j side pairs"),
                },
            }
        };
        for y in 0..=n {
            for x in 0..=n {
                for t in 0..w {
                    let side_wire = |side: usize, track: usize| -> Option<RrNodeId> {
                        match side {
                            0 => (x >= 1).then(|| wire(chanx_id(x, y, track))),
                            1 => (x < n).then(|| wire(chanx_id(x + 1, y, track))),
                            2 => (y >= 1).then(|| wire(chany_id(x, y, track))),
                            _ => (y < n).then(|| wire(chany_id(x, y + 1, track))),
                        }
                    };
                    for i in 0..4 {
                        for j in (i + 1)..4 {
                            let shift = turn_shift(i, j);
                            let tj = (t as isize + shift).rem_euclid(w as isize) as usize;
                            if let (Some(a), Some(bb)) = (side_wire(i, t), side_wire(j, tj)) {
                                b.bidi_edge(a, bb);
                            }
                        }
                    }
                }
            }
        }

        // ---- freeze to CSR ----------------------------------------------------
        let mut edge_start = Vec::with_capacity(b.nodes.len() + 1);
        let mut edges = Vec::new();
        edge_start.push(0u32);
        for adj in &b.adj {
            edges.extend_from_slice(adj);
            edge_start.push(edges.len() as u32);
        }

        Self {
            arch: *arch,
            nodes: b.nodes,
            edge_start,
            edges,
            switch_count: b.next_switch,
            wire_count: wire_total,
        }
    }

    /// The architecture this graph was built for.
    #[must_use]
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of wire-segment nodes (`ChanX` + `ChanY`).
    #[must_use]
    pub fn wire_count(&self) -> usize {
        self.wire_count
    }

    /// Number of programmable switches — the routing configuration bits of
    /// the fabric.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.switch_count as usize
    }

    /// The node table entry.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn node(&self, id: RrNodeId) -> &RrNode {
        &self.nodes[id.index()]
    }

    /// Outgoing edges of a node.
    #[must_use]
    pub fn edges(&self, id: RrNodeId) -> &[RrEdge] {
        let s = self.edge_start[id.index()] as usize;
        let e = self.edge_start[id.index() + 1] as usize;
        &self.edges[s..e]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = RrNodeId> {
        (0..self.nodes.len() as u32).map(RrNodeId)
    }

    fn wire_base(&self) -> (usize, usize) {
        let n = self.arch.grid;
        let w = self.arch.channel_width;
        let chanx_total = n * (n + 1) * w;
        (chanx_total, 2 * chanx_total)
    }

    fn clb_node_base(&self) -> usize {
        self.wire_base().1
    }

    /// Nodes per logic block: source, opin, sink, k ipins.
    fn clb_stride(&self) -> usize {
        3 + self.arch.k
    }

    /// The `SOURCE` node of the logic block at `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is not a logic site.
    #[must_use]
    pub fn logic_source(&self, site: Site) -> RrNodeId {
        let idx = self.clb_linear(site);
        RrNodeId((self.clb_node_base() + idx * self.clb_stride()) as u32)
    }

    /// The `SINK` node of the logic block at `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is not a logic site.
    #[must_use]
    pub fn logic_sink(&self, site: Site) -> RrNodeId {
        let idx = self.clb_linear(site);
        RrNodeId((self.clb_node_base() + idx * self.clb_stride() + 2) as u32)
    }

    fn clb_linear(&self, site: Site) -> usize {
        let n = self.arch.grid;
        let (x, y) = (site.x as usize, site.y as usize);
        assert!(
            (1..=n).contains(&x) && (1..=n).contains(&y) && site.sub == 0,
            "{site} is not a logic site"
        );
        (y - 1) * n + (x - 1)
    }

    fn io_node_base(&self) -> usize {
        self.clb_node_base() + self.arch.grid * self.arch.grid * self.clb_stride()
    }

    /// Nodes per IO pad: source, opin, ipin, sink.
    fn io_stride(&self) -> usize {
        4
    }

    fn io_linear(&self, site: Site) -> usize {
        let n = self.arch.grid;
        let cap = self.arch.io_capacity;
        let (x, y, sub) = (site.x as usize, site.y as usize, site.sub as usize);
        assert!(sub < cap, "{site} subsite out of range");
        // Order matches the builder: bottom, top, left, right.
        let position = if y == 0 && (1..=n).contains(&x) {
            x - 1
        } else if y == n + 1 && (1..=n).contains(&x) {
            n + (x - 1)
        } else if x == 0 && (1..=n).contains(&y) {
            2 * n + (y - 1)
        } else if x == n + 1 && (1..=n).contains(&y) {
            3 * n + (y - 1)
        } else {
            panic!("{site} is not an IO site");
        };
        position * cap + sub
    }

    /// The `SOURCE` node of the IO pad at `site` (for input pads).
    ///
    /// # Panics
    ///
    /// Panics if `site` is not an IO site.
    #[must_use]
    pub fn io_source(&self, site: Site) -> RrNodeId {
        let idx = self.io_linear(site);
        RrNodeId((self.io_node_base() + idx * self.io_stride()) as u32)
    }

    /// The `SINK` node of the IO pad at `site` (for output pads).
    ///
    /// # Panics
    ///
    /// Panics if `site` is not an IO site.
    #[must_use]
    pub fn io_sink(&self, site: Site) -> RrNodeId {
        let idx = self.io_linear(site);
        RrNodeId((self.io_node_base() + idx * self.io_stride() + 3) as u32)
    }

    /// The `SOURCE` node for the block placed on `site`, dispatching on the
    /// site kind.
    ///
    /// # Panics
    ///
    /// Panics if `site` is invalid for this architecture.
    #[must_use]
    pub fn source_at(&self, site: Site) -> RrNodeId {
        match self.arch.site_kind(site) {
            Some(crate::SiteKind::Logic) => self.logic_source(site),
            Some(crate::SiteKind::Io) => self.io_source(site),
            None => panic!("{site} is not a placeable site"),
        }
    }

    /// The `SINK` node for the block placed on `site`, dispatching on the
    /// site kind.
    ///
    /// # Panics
    ///
    /// Panics if `site` is invalid for this architecture.
    #[must_use]
    pub fn sink_at(&self, site: Site) -> RrNodeId {
        match self.arch.site_kind(site) {
            Some(crate::SiteKind::Logic) => self.logic_sink(site),
            Some(crate::SiteKind::Io) => self.io_sink(site),
            None => panic!("{site} is not a placeable site"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Architecture, RoutingGraph) {
        let arch = Architecture::new(4, 3, 4);
        let rrg = RoutingGraph::build(&arch);
        (arch, rrg)
    }

    #[test]
    fn node_lookup_consistency() {
        let (arch, rrg) = small();
        for site in arch.logic_sites() {
            let s = rrg.logic_source(site);
            let k = rrg.logic_sink(site);
            assert_eq!(rrg.node(s).kind, RrKind::Source, "{site}");
            assert_eq!(rrg.node(k).kind, RrKind::Sink, "{site}");
            assert_eq!(rrg.node(s).x, site.x);
            assert_eq!(rrg.node(s).y, site.y);
            assert_eq!(rrg.node(k).capacity as usize, arch.k);
            assert_eq!(rrg.source_at(site), s);
            assert_eq!(rrg.sink_at(site), k);
        }
        for site in arch.io_sites() {
            let s = rrg.io_source(site);
            let k = rrg.io_sink(site);
            assert_eq!(rrg.node(s).kind, RrKind::Source, "{site}");
            assert_eq!(rrg.node(k).kind, RrKind::Sink, "{site}");
            assert_eq!(rrg.node(s).x, site.x, "{site}");
            assert_eq!(rrg.node(s).y, site.y, "{site}");
            assert_eq!(rrg.node(s).aux, u16::from(site.sub), "{site}");
        }
    }

    #[test]
    fn source_reaches_opin_and_wires() {
        let (arch, rrg) = small();
        let site = arch.logic_sites().next().unwrap();
        let source = rrg.logic_source(site);
        let opin_edges = rrg.edges(source);
        assert_eq!(opin_edges.len(), 1);
        assert!(opin_edges[0].switch.is_none(), "source→opin hard-wired");
        let opin = opin_edges[0].to;
        assert_eq!(rrg.node(opin).kind, RrKind::Opin);
        // fc_out = 1.0 → 4 channels × W switched edges.
        let wires = rrg.edges(opin);
        assert_eq!(wires.len(), 4 * arch.channel_width);
        for e in wires {
            assert!(e.switch.is_some());
            assert!(matches!(rrg.node(e.to).kind, RrKind::ChanX | RrKind::ChanY));
        }
    }

    #[test]
    fn ipins_feed_sink() {
        let (arch, rrg) = small();
        let site = Site::new(2, 2, 0);
        let sink = rrg.logic_sink(site);
        // Count IPINs that feed this sink.
        let mut feeders = 0;
        for id in rrg.node_ids() {
            if rrg.node(id).kind == RrKind::Ipin && rrg.edges(id).iter().any(|e| e.to == sink) {
                feeders += 1;
                assert_eq!(rrg.node(id).x, 2);
            }
        }
        assert_eq!(feeders, arch.k);
    }

    #[test]
    fn switch_block_degree_disjoint() {
        // In the disjoint pattern every wire connects to at most 3 other
        // wires per endpoint (Fs = 3), i.e. ≤ 6 wire neighbours total for
        // a unit segment with two endpoints.
        let (_, rrg) = small();
        for id in rrg.node_ids() {
            if matches!(rrg.node(id).kind, RrKind::ChanX | RrKind::ChanY) {
                let wire_neighbours = rrg
                    .edges(id)
                    .iter()
                    .filter(|e| matches!(rrg.node(e.to).kind, RrKind::ChanX | RrKind::ChanY))
                    .count();
                assert!(wire_neighbours <= 6, "{id} has {wire_neighbours}");
            }
        }
    }

    #[test]
    fn bidirectional_switches_share_bits() {
        let (_, rrg) = small();
        // Collect wire→wire edges and check that each switch id appears on
        // exactly two directed edges (the two directions).
        let mut uses: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for id in rrg.node_ids() {
            if matches!(rrg.node(id).kind, RrKind::ChanX | RrKind::ChanY) {
                for e in rrg.edges(id) {
                    if matches!(rrg.node(e.to).kind, RrKind::ChanX | RrKind::ChanY) {
                        *uses
                            .entry(e.switch.expect("wire-wire is switched").index())
                            .or_default() += 1;
                    }
                }
            }
        }
        assert!(!uses.is_empty());
        for (s, count) in uses {
            assert_eq!(count, 2, "switch {s} used {count} times");
        }
    }

    #[test]
    fn switch_count_matches_enumeration() {
        let (_, rrg) = small();
        let mut max_seen = 0usize;
        let mut distinct: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for id in rrg.node_ids() {
            for e in rrg.edges(id) {
                if let Some(s) = e.switch {
                    distinct.insert(s.index());
                    max_seen = max_seen.max(s.index());
                }
            }
        }
        assert_eq!(distinct.len(), rrg.switch_count());
        assert_eq!(max_seen + 1, rrg.switch_count());
    }

    #[test]
    fn routing_dominates_lut_bits() {
        // The paper's premise: "the configuration memory consists mostly
        // of routing bits".
        let arch = Architecture::new(4, 10, 10);
        let rrg = RoutingGraph::build(&arch);
        assert!(rrg.switch_count() > 4 * arch.total_lut_bits());
    }

    #[test]
    fn fractional_fc() {
        let arch = Architecture::new(4, 3, 8).with_fc(0.5, 0.25);
        let rrg = RoutingGraph::build(&arch);
        let site = Site::new(2, 2, 0);
        let source = rrg.logic_source(site);
        let opin = rrg.edges(source)[0].to;
        assert_eq!(rrg.edges(opin).len(), 4 * 2); // 0.25 × 8 per channel
    }

    #[test]
    #[should_panic(expected = "not a logic site")]
    fn logic_lookup_rejects_io() {
        let (_, rrg) = small();
        let _ = rrg.logic_source(Site::new(0, 1, 0));
    }

    #[test]
    #[should_panic(expected = "not an IO site")]
    fn io_lookup_rejects_logic() {
        let (_, rrg) = small();
        let _ = rrg.io_source(Site::new(1, 1, 0));
    }
}
