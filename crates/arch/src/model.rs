//! The island-style FPGA architecture model.
//!
//! The model mirrors VPR's `4lut_sanitized.arch`, the architecture used in
//! the paper's experiments: logic blocks containing one k-LUT and one
//! flip-flop, IO pads on the periphery, and an interconnect of unit-length
//! wire segments with a disjoint (planar) switch-block pattern of
//! flexibility Fs = 3. The LUT width `k`, array size, channel width and
//! connection-block flexibilities are all parameters, matching the paper's
//! remark that "the number of inputs of the LUTs is simply an input
//! parameter of the tool flow".

use std::fmt;

/// A physical location a netlist block can be placed on.
///
/// Coordinates follow the VPR convention: the logic array occupies
/// `1..=n` in both axes, the IO ring sits at coordinate `0` and `n + 1`
/// (corners are unused). IO locations hold [`Architecture::io_capacity`]
/// pads, distinguished by `sub`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Site {
    /// Column, `0..=n + 1`.
    pub x: u16,
    /// Row, `0..=n + 1`.
    pub y: u16,
    /// Subsite within an IO location (always 0 for logic sites).
    pub sub: u8,
}

impl Site {
    /// Creates a site.
    #[must_use]
    pub fn new(x: u16, y: u16, sub: u8) -> Self {
        Self { x, y, sub }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{}).{}", self.x, self.y, self.sub)
    }
}

/// What kind of block a site can host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A logic block (one k-LUT + one flip-flop).
    Logic,
    /// An IO pad position.
    Io,
}

/// The switch-block connection pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwitchPattern {
    /// The planar/disjoint subset pattern: track `t` connects to track `t`
    /// on the other sides. Simple, but tracks form disjoint domains, so
    /// fractional connection-block flexibilities can make pin pairs
    /// unreachable.
    #[default]
    Disjoint,
    /// A Wilton-style rotating pattern: straight connections keep the
    /// track, turns shift it by ±1. Routes can migrate between tracks,
    /// which keeps the fabric routable at low `Fc` (Fs stays 3).
    Wilton,
}

/// An island-style FPGA: an `n × n` array of logic blocks surrounded by an
/// IO ring, with routing channels of `channel_width` unit-length tracks.
///
/// # Example
///
/// ```
/// use mm_arch::Architecture;
///
/// let arch = Architecture::new(4, 6, 8);
/// assert_eq!(arch.logic_sites().count(), 36);
/// // 4 sides × 6 positions × 2 pads.
/// assert_eq!(arch.io_sites().count(), 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Architecture {
    /// LUT input count of each logic block.
    pub k: usize,
    /// Logic-array side length `n`.
    pub grid: usize,
    /// Tracks per routing channel.
    pub channel_width: usize,
    /// Pads per IO location (VPR's `io_rat`, 2 in `4lut_sanitized`).
    pub io_capacity: usize,
    /// Fraction of the adjacent channel's tracks each logic input pin
    /// connects to (`Fc_in`).
    pub fc_in: f64,
    /// Fraction of each adjacent channel's tracks the output pin connects
    /// to (`Fc_out`).
    pub fc_out: f64,
    /// Switch-block connection pattern.
    pub switch_pattern: SwitchPattern,
}

impl Architecture {
    /// Creates an architecture with the `4lut_sanitized` defaults for the
    /// flexibility parameters (fully connected pins, `io_rat` 2).
    ///
    /// # Panics
    ///
    /// Panics if `grid` or `channel_width` is zero, or `k` outside `1..=6`.
    #[must_use]
    pub fn new(k: usize, grid: usize, channel_width: usize) -> Self {
        assert!((1..=6).contains(&k), "k must be in 1..=6");
        assert!(grid >= 1, "grid must be positive");
        assert!(channel_width >= 1, "channel width must be positive");
        Self {
            k,
            grid,
            channel_width,
            io_capacity: 2,
            fc_in: 1.0,
            fc_out: 1.0,
            switch_pattern: SwitchPattern::Disjoint,
        }
    }

    /// Returns a copy with a different switch-block pattern.
    #[must_use]
    pub fn with_switch_pattern(mut self, pattern: SwitchPattern) -> Self {
        self.switch_pattern = pattern;
        self
    }

    /// Returns a copy with a different channel width (used by the
    /// minimum-channel-width search).
    #[must_use]
    pub fn with_channel_width(mut self, w: usize) -> Self {
        assert!(w >= 1, "channel width must be positive");
        self.channel_width = w;
        self
    }

    /// Returns a copy with the given connection-block flexibilities.
    ///
    /// # Panics
    ///
    /// Panics unless both fractions are in `(0, 1]`.
    #[must_use]
    pub fn with_fc(mut self, fc_in: f64, fc_out: f64) -> Self {
        assert!(fc_in > 0.0 && fc_in <= 1.0, "fc_in must be in (0,1]");
        assert!(fc_out > 0.0 && fc_out <= 1.0, "fc_out must be in (0,1]");
        self.fc_in = fc_in;
        self.fc_out = fc_out;
        self
    }

    /// A stable, content-addressed fingerprint of every parameter that
    /// affects placement and routing on this architecture.
    ///
    /// Two architectures with equal fingerprints build identical site sets
    /// and routing-resource graphs; floats are encoded via their exact bit
    /// patterns. Used by the batch engine's stage cache keys.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "arch-v1;k={};grid={};w={};io={};fci={:016x};fco={:016x};sw={:?}",
            self.k,
            self.grid,
            self.channel_width,
            self.io_capacity,
            self.fc_in.to_bits(),
            self.fc_out.to_bits(),
            self.switch_pattern,
        )
    }

    /// The kind of block `site` can host, or `None` for the unused corner
    /// positions and out-of-range coordinates.
    #[must_use]
    pub fn site_kind(&self, site: Site) -> Option<SiteKind> {
        let n = self.grid as u16;
        let (x, y) = (site.x, site.y);
        let on_x_ring = x == 0 || x == n + 1;
        let on_y_ring = y == 0 || y == n + 1;
        if x > n + 1 || y > n + 1 || (on_x_ring && on_y_ring) {
            None // out of range, or an unused corner position
        } else if on_x_ring || on_y_ring {
            (usize::from(site.sub) < self.io_capacity).then_some(SiteKind::Io)
        } else {
            (site.sub == 0).then_some(SiteKind::Logic)
        }
    }

    /// Iterates over all logic sites (row-major).
    pub fn logic_sites(&self) -> impl Iterator<Item = Site> {
        let n = self.grid as u16;
        (1..=n).flat_map(move |y| (1..=n).map(move |x| Site::new(x, y, 0)))
    }

    /// Iterates over all IO pad sites (each subsite separately).
    pub fn io_sites(&self) -> impl Iterator<Item = Site> {
        let n = self.grid as u16;
        let cap = self.io_capacity as u8;
        let bottom = (1..=n).map(move |x| (x, 0));
        let top = (1..=n).map(move |x| (x, n + 1));
        let left = (1..=n).map(move |y| (0u16, y));
        let right = (1..=n).map(move |y| (n + 1, y));
        bottom
            .chain(top)
            .chain(left)
            .chain(right)
            .flat_map(move |(x, y)| (0..cap).map(move |sub| Site::new(x, y, sub)))
    }

    /// Number of logic sites.
    #[must_use]
    pub fn logic_capacity(&self) -> usize {
        self.grid * self.grid
    }

    /// Number of IO pad sites.
    #[must_use]
    pub fn io_pad_capacity(&self) -> usize {
        4 * self.grid * self.io_capacity
    }

    /// Configuration bits of one logic block: `2^k` truth-table cells plus
    /// one flip-flop select bit.
    #[must_use]
    pub fn lut_bits_per_block(&self) -> usize {
        (1usize << self.k) + 1
    }

    /// Total LUT configuration bits of the array.
    #[must_use]
    pub fn total_lut_bits(&self) -> usize {
        self.logic_capacity() * self.lut_bits_per_block()
    }

    /// The smallest square array that fits `luts` logic blocks and `pads`
    /// IO pads.
    #[must_use]
    pub fn min_grid_for(luts: usize, pads: usize, io_capacity: usize) -> usize {
        let logic_side = (luts as f64).sqrt().ceil() as usize;
        let io_side = pads.div_ceil(4 * io_capacity.max(1));
        logic_side.max(io_side).max(1)
    }

    /// The paper's sizing rule: "the square area of the FPGA … chosen 20%
    /// bigger than the minimum needed" — 20% more *area*, i.e. sides scale
    /// by √1.2.
    #[must_use]
    pub fn relaxed_grid_for(luts: usize, pads: usize, io_capacity: usize) -> usize {
        let min = Self::min_grid_for(luts, pads, io_capacity);
        let relaxed_logic = ((luts as f64 * 1.2).sqrt()).ceil() as usize;
        relaxed_logic.max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_kinds() {
        let a = Architecture::new(4, 4, 8);
        assert_eq!(a.site_kind(Site::new(1, 1, 0)), Some(SiteKind::Logic));
        assert_eq!(a.site_kind(Site::new(4, 4, 0)), Some(SiteKind::Logic));
        assert_eq!(a.site_kind(Site::new(0, 1, 0)), Some(SiteKind::Io));
        assert_eq!(a.site_kind(Site::new(0, 1, 1)), Some(SiteKind::Io));
        assert_eq!(a.site_kind(Site::new(0, 1, 2)), None, "io_rat exceeded");
        assert_eq!(a.site_kind(Site::new(0, 0, 0)), None, "corner");
        assert_eq!(a.site_kind(Site::new(5, 5, 0)), None, "corner");
        assert_eq!(a.site_kind(Site::new(6, 1, 0)), None, "out of range");
        assert_eq!(a.site_kind(Site::new(1, 1, 1)), None, "logic has 1 sub");
    }

    #[test]
    fn site_counts_match_capacity() {
        let a = Architecture::new(4, 5, 8);
        assert_eq!(a.logic_sites().count(), a.logic_capacity());
        assert_eq!(a.io_sites().count(), a.io_pad_capacity());
        // Every enumerated site is valid.
        for s in a.logic_sites() {
            assert_eq!(a.site_kind(s), Some(SiteKind::Logic));
        }
        for s in a.io_sites() {
            assert_eq!(a.site_kind(s), Some(SiteKind::Io));
        }
    }

    #[test]
    fn lut_bits() {
        let a = Architecture::new(4, 3, 8);
        assert_eq!(a.lut_bits_per_block(), 17);
        assert_eq!(a.total_lut_bits(), 9 * 17);
    }

    #[test]
    fn min_grid_covers_both_resources() {
        // 10 LUTs need a 4×4 array; 50 pads need ceil(50/8) > 6 → side 7.
        assert_eq!(Architecture::min_grid_for(10, 8, 2), 4);
        assert_eq!(Architecture::min_grid_for(10, 50, 2), 7);
        assert_eq!(Architecture::min_grid_for(0, 0, 2), 1);
    }

    #[test]
    fn relaxed_grid_adds_twenty_percent_area() {
        // 100 LUTs: min side 10, relaxed side ceil(sqrt(120)) = 11.
        assert_eq!(Architecture::relaxed_grid_for(100, 10, 2), 11);
        assert!(Architecture::relaxed_grid_for(256, 10, 2) >= 18);
    }

    #[test]
    fn builder_methods() {
        let a = Architecture::new(4, 6, 10)
            .with_channel_width(14)
            .with_fc(0.5, 0.25);
        assert_eq!(a.channel_width, 14);
        assert!((a.fc_in - 0.5).abs() < 1e-12);
        assert!((a.fc_out - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fc_in")]
    fn fc_zero_rejected() {
        let _ = Architecture::new(4, 6, 10).with_fc(0.0, 1.0);
    }
}
