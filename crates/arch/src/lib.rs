//! Island-style FPGA architecture model and routing-resource graph.
//!
//! Reproduces the experimental substrate of the paper (§IV-B): VPR's
//! `4lut_sanitized.arch` — logic blocks with one 4-LUT and one flip-flop,
//! IO pads of capacity 2 on the periphery, unit-length wire segments and a
//! disjoint switch-block pattern — generalised over LUT width, array size,
//! channel width and connection-block flexibility.
//!
//! Two views are provided:
//!
//! * [`Architecture`] — the placeable sites and sizing rules ("the square
//!   area of the FPGA and the channel width were both chosen 20% bigger
//!   than the minimum needed").
//! * [`RoutingGraph`] — the routing-resource graph: every programmable
//!   switch is one configuration bit ([`SwitchId`]), the currency in which
//!   the paper measures reconfiguration time.
//!
//! # Example
//!
//! ```
//! use mm_arch::{Architecture, RoutingGraph, Site, SiteKind};
//!
//! let arch = Architecture::new(4, 8, 10);
//! assert_eq!(arch.site_kind(Site::new(3, 4, 0)), Some(SiteKind::Logic));
//!
//! let rrg = RoutingGraph::build(&arch);
//! // Routing bits dominate LUT bits, the premise of the paper's Fig. 6.
//! assert!(rrg.switch_count() > arch.total_lut_bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod rrg;

pub use model::{Architecture, Site, SiteKind, SwitchPattern};
pub use rrg::{RoutingGraph, RrEdge, RrKind, RrNode, RrNodeId, SwitchId};
