//! Differential tests: the optimized scratch-arena router must be
//! byte-identical to the naive reference formulation, and bounding-box
//! pruning must never cost routability.

use mm_arch::{Architecture, RoutingGraph, Site};
use mm_boolexpr::ModeSet;
use mm_route::reference::{route_reference, route_reference_with_margins};
use mm_route::{seeded_margins, RouteNet, RouteSink, Router, RouterOptions, Routing};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated multi-mode routing problem.
struct Suite {
    rrg: RoutingGraph,
    nets: Vec<RouteNet>,
    modes: usize,
}

/// Deterministically generates a random multi-mode suite: a small fabric
/// plus nets with random terminals and random non-empty activation sets.
fn random_suite(seed: u64) -> Suite {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..=7usize);
    let w = rng.gen_range(2..=4usize);
    let modes = rng.gen_range(1..=3usize);
    let rrg = RoutingGraph::build(&Architecture::new(4, n, w));
    let net_count = rng.gen_range(3..=9usize);
    let mut nets = Vec::with_capacity(net_count);
    let site =
        |rng: &mut StdRng| Site::new(rng.gen_range(1..=n) as u16, rng.gen_range(1..=n) as u16, 0);
    let activation = |rng: &mut StdRng| {
        let mut act = ModeSet::single(rng.gen_range(0..modes));
        for m in 0..modes {
            if rng.gen_bool(0.3) {
                act.insert(m);
            }
        }
        act
    };
    for i in 0..net_count {
        let source = rrg.logic_source(site(&mut rng));
        let sink_count = rng.gen_range(1..=3usize);
        let sinks = (0..sink_count)
            .map(|_| RouteSink {
                node: rrg.logic_sink(site(&mut rng)),
                activation: activation(&mut rng),
            })
            .collect();
        nets.push(RouteNet {
            name: format!("n{i}"),
            source,
            sinks,
        });
    }
    Suite { rrg, nets, modes }
}

/// A high-fanout (broadcast) suite: one net fanning out from a central
/// driver to many sinks spread over the fabric, plus a few background
/// nets — the workload shape the Steiner decomposition targets.
fn broadcast_suite(seed: u64) -> Suite {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(6..=9usize);
    let w = rng.gen_range(4..=6usize);
    let modes = rng.gen_range(1..=2usize);
    let rrg = RoutingGraph::build(&Architecture::new(4, n, w));
    let site =
        |rng: &mut StdRng| Site::new(rng.gen_range(1..=n) as u16, rng.gen_range(1..=n) as u16, 0);
    let mut nets = Vec::new();
    let src_site = site(&mut rng);
    let fanout = rng.gen_range(8..=16usize);
    let act = ModeSet::single(rng.gen_range(0..modes));
    let sinks = (0..fanout)
        .map(|_| RouteSink {
            node: rrg.logic_sink(site(&mut rng)),
            activation: act,
        })
        .collect();
    nets.push(RouteNet {
        name: "bcast".into(),
        source: rrg.logic_source(src_site),
        sinks,
    });
    for i in 0..rng.gen_range(0..=3usize) {
        let source = rrg.logic_source(site(&mut rng));
        let sinks = (0..rng.gen_range(1..=2usize))
            .map(|_| RouteSink {
                node: rrg.logic_sink(site(&mut rng)),
                activation: ModeSet::single(rng.gen_range(0..modes)),
            })
            .collect();
        nets.push(RouteNet {
            name: format!("bg{i}"),
            source,
            sinks,
        });
    }
    Suite { rrg, nets, modes }
}

/// A suite engineered for sink-order ties: every net's sinks sit at
/// equal Manhattan distance from the source (mirrored coordinates), so
/// the farthest-first order is decided purely by the index tie-break.
fn equidistant_suite(seed: u64) -> Suite {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(5..=7usize);
    let w = rng.gen_range(2..=4usize);
    let rrg = RoutingGraph::build(&Architecture::new(4, n, w));
    let net_count = rng.gen_range(2..=5usize);
    let mut nets = Vec::new();
    for i in 0..net_count {
        let cx = rng.gen_range(2..n) as u16;
        let cy = rng.gen_range(2..n) as u16;
        let dmax = (cx - 1)
            .min(cy - 1)
            .min(n as u16 - cx)
            .min(n as u16 - cy)
            .max(1);
        let d = rng.gen_range(1..=dmax);
        // Four sinks at identical distance `2·d` (diagonal mirrors), in
        // shuffled insertion order so ties actually exercise the sort.
        let mut corners = vec![
            (cx + d, cy + d),
            (cx - d, cy - d),
            (cx + d, cy - d),
            (cx - d, cy + d),
        ];
        for j in (1..corners.len()).rev() {
            corners.swap(j, rng.gen_range(0..=j));
        }
        let sinks = corners
            .into_iter()
            .map(|(x, y)| RouteSink {
                node: rrg.logic_sink(Site::new(x, y, 0)),
                activation: ModeSet::single(0),
            })
            .collect();
        nets.push(RouteNet {
            name: format!("eq{i}"),
            source: rrg.logic_source(Site::new(cx, cy, 0)),
            sinks,
        });
    }
    Suite {
        rrg,
        nets,
        modes: 1,
    }
}

/// Asserts two routings are byte-identical: same iteration count, same
/// status, and the same trees node for node.
fn assert_identical(a: &Routing, b: &Routing) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.iterations, b.iterations);
    prop_assert_eq!(a.success, b.success);
    prop_assert_eq!(a.overused_nodes, b.overused_nodes);
    prop_assert_eq!(a.unrouted_sinks, b.unrouted_sinks);
    prop_assert_eq!(a.nets.len(), b.nets.len());
    for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
        prop_assert_eq!(&x.sink_pos, &y.sink_pos);
        prop_assert!(x.tree.len() == y.tree.len(), "net {} tree size", i);
        for (j, (s, t)) in x.tree.iter().zip(&y.tree).enumerate() {
            prop_assert!(
                s.node == t.node
                    && s.parent == t.parent
                    && s.switch == t.switch
                    && s.activation == t.activation,
                "net {} tree node {} differs: {:?} vs {:?}",
                i,
                j,
                s,
                t
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimized router (scratch arena, stamped tree positions,
    /// touched-node accounting, bounding boxes) produces byte-identical
    /// results to the naive reference implementation.
    #[test]
    fn optimized_router_matches_reference(seed in 0u64..1_000_000) {
        let suite = random_suite(seed);
        let options = RouterOptions::for_modes(suite.modes);
        let optimized = Router::new(&suite.rrg, options).route(&suite.nets);
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&optimized, &reference)?;
    }

    /// Parity also holds with bounding boxes disabled (the pre-
    /// optimization full-fabric exploration).
    #[test]
    fn parity_without_bbox(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_add(0x5eed));
        let options = RouterOptions::for_modes(suite.modes).without_bbox();
        let optimized = Router::new(&suite.rrg, options).route(&suite.nets);
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&optimized, &reference)?;
    }

    /// Bounding-box growth preserves routability: every suite the
    /// unpruned router can route must also route with pruning enabled.
    #[test]
    fn bbox_growth_routes_every_feasible_net(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(3).wrapping_add(17));
        let unpruned_options = RouterOptions::for_modes(suite.modes).without_bbox();
        let unpruned = Router::new(&suite.rrg, unpruned_options).route(&suite.nets);
        if unpruned.success {
            let options = RouterOptions::for_modes(suite.modes);
            let pruned = Router::new(&suite.rrg, options).route(&suite.nets);
            prop_assert!(
                pruned.success,
                "bbox pruning lost routability on seed-feasible suite (seed {})",
                seed
            );
            prop_assert_eq!(pruned.unrouted_sinks, 0);
        }
    }

    /// Incremental rip-up parity also holds with full tear-down disabled
    /// in both implementations (the pre-optimization behaviour) — the
    /// two rip-up policies are each byte-identical across the pair.
    #[test]
    fn parity_with_full_reroute(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_add(0xbeef));
        let options = RouterOptions::for_modes(suite.modes).with_full_reroute();
        let optimized = Router::new(&suite.rrg, options).route(&suite.nets);
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&optimized, &reference)?;
    }

    /// A run that converges before any congested-net handling kicks in
    /// (within `reroute_all_iters` iterations) is byte-identical under
    /// incremental and full rip-up — the incremental path only ever
    /// diverges where tear-down policy matters.
    #[test]
    fn incremental_is_identical_to_full_reroute_until_congestion_handling(
        seed in 0u64..1_000_000
    ) {
        let suite = random_suite(seed.wrapping_mul(5).wrapping_add(1));
        let incremental_options = RouterOptions::for_modes(suite.modes);
        let full = Router::new(&suite.rrg, incremental_options.with_full_reroute())
            .route(&suite.nets);
        if full.iterations <= incremental_options.reroute_all_iters {
            let incremental = Router::new(&suite.rrg, incremental_options).route(&suite.nets);
            assert_identical(&incremental, &full)?;
        }
    }

    /// Incremental rip-up preserves routability: every suite the full
    /// tear-down router can route also routes incrementally, and the
    /// result passes the same structural checks (asserted by
    /// `assert_identical` against the naive incremental mirror).
    #[test]
    fn incremental_routes_every_full_reroute_feasible_suite(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(11).wrapping_add(5));
        let options = RouterOptions::for_modes(suite.modes);
        let full = Router::new(&suite.rrg, options.with_full_reroute()).route(&suite.nets);
        if full.success {
            let incremental = Router::new(&suite.rrg, options).route(&suite.nets);
            prop_assert!(
                incremental.success,
                "incremental rip-up lost routability (seed {})",
                seed
            );
            prop_assert_eq!(incremental.unrouted_sinks, 0);
        }
    }

    /// All-zero criticalities leave the cost expression on its original
    /// branch: `route_with_criticality` with zeros is byte-identical to
    /// plain `route`.
    #[test]
    fn zero_criticality_is_identical_to_plain_route(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(17).wrapping_add(29));
        let options = RouterOptions::for_modes(suite.modes);
        let plain = Router::new(&suite.rrg, options).route(&suite.nets);
        let zeros: Vec<Vec<f64>> = suite.nets.iter().map(|n| vec![0.0; n.sinks.len()]).collect();
        let crit = Router::new(&suite.rrg, options)
            .route_with_criticality(&suite.nets, &zeros);
        assert_identical(&plain, &crit)?;
    }

    /// Nonzero criticalities bias wire costs but must never lose
    /// routability on a congestion-feasible suite, and the result must
    /// still verify structurally per mode.
    #[test]
    fn criticality_preserves_routability(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(19).wrapping_add(3));
        let options = RouterOptions::for_modes(suite.modes);
        let plain = Router::new(&suite.rrg, options).route(&suite.nets);
        if plain.success {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc417);
            let crit: Vec<Vec<f64>> = suite
                .nets
                .iter()
                .map(|n| n.sinks.iter().map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let routed = Router::new(&suite.rrg, options)
                .route_with_criticality(&suite.nets, &crit);
            prop_assert!(
                routed.success,
                "criticality weighting lost routability (seed {})",
                seed
            );
            prop_assert_eq!(routed.unrouted_sinks, 0);
            prop_assert!(
                mm_route::verify_routing(&suite.rrg, &suite.nets, &routed, suite.modes).is_ok(),
                "verification failed (seed {})",
                seed
            );
        }
    }

    /// With Steiner decomposition off (the default), options that merely
    /// carry a high `steiner_fanout` threshold no net reaches are
    /// byte-identical to today's router — the gate adds no side effects.
    #[test]
    fn steiner_off_is_byte_identical(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(23).wrapping_add(11));
        let options = RouterOptions::for_modes(suite.modes);
        let plain = Router::new(&suite.rrg, options).route(&suite.nets);
        let gated = Router::new(&suite.rrg, options.with_steiner(usize::MAX))
            .route(&suite.nets);
        assert_identical(&plain, &gated)?;
    }

    /// Steiner-mode parity: high-fanout nets routed via the shared
    /// Steiner topology are byte-identical between the optimized router
    /// and the naive reference mirror.
    #[test]
    fn steiner_parity(seed in 0u64..1_000_000) {
        let suite = broadcast_suite(seed);
        let options = RouterOptions::for_modes(suite.modes).with_steiner(4);
        let optimized = Router::new(&suite.rrg, options).route(&suite.nets);
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&optimized, &reference)?;
    }

    /// Steiner decomposition preserves routability and never worsens
    /// overuse: every broadcast suite the sink-by-sink router resolves,
    /// the Steiner router resolves too (to zero overuse), and the result
    /// verifies structurally.
    #[test]
    fn steiner_preserves_routability_and_overuse(seed in 0u64..1_000_000) {
        let suite = broadcast_suite(seed.wrapping_mul(7).wrapping_add(13));
        let options = RouterOptions::for_modes(suite.modes);
        let plain = Router::new(&suite.rrg, options).route(&suite.nets);
        if plain.success {
            let steiner = Router::new(&suite.rrg, options.with_steiner(4))
                .route(&suite.nets);
            prop_assert!(
                steiner.success,
                "Steiner mode lost routability (seed {})", seed
            );
            prop_assert!(steiner.overused_nodes <= plain.overused_nodes);
            prop_assert_eq!(steiner.unrouted_sinks, 0);
            prop_assert!(
                mm_route::verify_routing(&suite.rrg, &suite.nets, &steiner, suite.modes).is_ok(),
                "Steiner routing failed structural verification (seed {})", seed
            );
        }
    }

    /// Incremental rip-up on stitched Steiner trees: the subtree pruning
    /// and lost-sink repair work on Steiner-built trees exactly as they
    /// do on sink-by-sink trees — full-reroute feasibility is preserved
    /// and both implementations stay byte-identical.
    #[test]
    fn steiner_incremental_ripup_works_on_stitched_trees(seed in 0u64..1_000_000) {
        let suite = broadcast_suite(seed.wrapping_mul(31).wrapping_add(3));
        let options = RouterOptions::for_modes(suite.modes).with_steiner(4);
        let full = Router::new(&suite.rrg, options.with_full_reroute()).route(&suite.nets);
        let incremental = Router::new(&suite.rrg, options).route(&suite.nets);
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&incremental, &reference)?;
        if full.success {
            prop_assert!(
                incremental.success,
                "incremental rip-up on Steiner trees lost routability (seed {})", seed
            );
        }
    }

    /// Sink-order tie-breaking is deterministic: suites whose sinks are
    /// all equidistant from their source route byte-identically across
    /// implementations and across repeated runs — equal-distance sinks
    /// order by sink index, not by sort artefacts.
    #[test]
    fn equidistant_sink_ordering_is_pinned(seed in 0u64..1_000_000) {
        let suite = equidistant_suite(seed);
        let options = RouterOptions::for_modes(suite.modes);
        let first = Router::new(&suite.rrg, options).route(&suite.nets);
        let again = Router::new(&suite.rrg, options).route(&suite.nets);
        assert_identical(&first, &again)?;
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&first, &reference)?;
        // Steiner selection is tie-broken the same way.
        let steiner = RouterOptions::for_modes(suite.modes).with_steiner(2);
        let s1 = Router::new(&suite.rrg, steiner).route(&suite.nets);
        let s2 = route_reference(&suite.rrg, steiner, &suite.nets);
        assert_identical(&s1, &s2)?;
    }

    /// Explicit HPWL-seeded margins through `route_with_margins` match
    /// the options-derived path on both implementations.
    #[test]
    fn explicit_margins_match_implicit(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(13).wrapping_add(7));
        let options = RouterOptions::for_modes(suite.modes);
        let margins = seeded_margins(&suite.rrg, &suite.nets, &options);
        let implicit = Router::new(&suite.rrg, options).route(&suite.nets);
        let explicit =
            Router::new(&suite.rrg, options).route_with_margins(&suite.nets, &margins);
        assert_identical(&implicit, &explicit)?;
        let reference = route_reference_with_margins(&suite.rrg, options, &suite.nets, &margins);
        assert_identical(&explicit, &reference)?;
    }
}

/// Reusing one router across repeated `route()` calls keeps the scratch
/// arena stable (no per-net allocations in steady state) and stays
/// deterministic.
#[test]
fn scratch_arena_reuse_is_deterministic_and_stable() {
    let suite = random_suite(0xfab);
    let options = RouterOptions::for_modes(suite.modes);
    let baseline = Router::new(&suite.rrg, options).route(&suite.nets);

    let mut reused = Router::new(&suite.rrg, options);
    let first = reused.route(&suite.nets);
    assert_eq!(first.iterations, baseline.iterations);
    let footprint = reused.scratch_footprint();
    for _ in 0..4 {
        let _ = reused.route(&suite.nets);
        assert_eq!(
            reused.scratch_footprint(),
            footprint,
            "steady-state route() must not grow the scratch arena"
        );
    }
}
