//! Differential tests: the optimized scratch-arena router must be
//! byte-identical to the naive reference formulation, and bounding-box
//! pruning must never cost routability.

use mm_arch::{Architecture, RoutingGraph, Site};
use mm_boolexpr::ModeSet;
use mm_route::reference::{route_reference, route_reference_with_margins};
use mm_route::{seeded_margins, RouteNet, RouteSink, Router, RouterOptions, Routing};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated multi-mode routing problem.
struct Suite {
    rrg: RoutingGraph,
    nets: Vec<RouteNet>,
    modes: usize,
}

/// Deterministically generates a random multi-mode suite: a small fabric
/// plus nets with random terminals and random non-empty activation sets.
fn random_suite(seed: u64) -> Suite {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..=7usize);
    let w = rng.gen_range(2..=4usize);
    let modes = rng.gen_range(1..=3usize);
    let rrg = RoutingGraph::build(&Architecture::new(4, n, w));
    let net_count = rng.gen_range(3..=9usize);
    let mut nets = Vec::with_capacity(net_count);
    let site =
        |rng: &mut StdRng| Site::new(rng.gen_range(1..=n) as u16, rng.gen_range(1..=n) as u16, 0);
    let activation = |rng: &mut StdRng| {
        let mut act = ModeSet::single(rng.gen_range(0..modes));
        for m in 0..modes {
            if rng.gen_bool(0.3) {
                act.insert(m);
            }
        }
        act
    };
    for i in 0..net_count {
        let source = rrg.logic_source(site(&mut rng));
        let sink_count = rng.gen_range(1..=3usize);
        let sinks = (0..sink_count)
            .map(|_| RouteSink {
                node: rrg.logic_sink(site(&mut rng)),
                activation: activation(&mut rng),
            })
            .collect();
        nets.push(RouteNet {
            name: format!("n{i}"),
            source,
            sinks,
        });
    }
    Suite { rrg, nets, modes }
}

/// Asserts two routings are byte-identical: same iteration count, same
/// status, and the same trees node for node.
fn assert_identical(a: &Routing, b: &Routing) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.iterations, b.iterations);
    prop_assert_eq!(a.success, b.success);
    prop_assert_eq!(a.overused_nodes, b.overused_nodes);
    prop_assert_eq!(a.unrouted_sinks, b.unrouted_sinks);
    prop_assert_eq!(a.nets.len(), b.nets.len());
    for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
        prop_assert_eq!(&x.sink_pos, &y.sink_pos);
        prop_assert!(x.tree.len() == y.tree.len(), "net {} tree size", i);
        for (j, (s, t)) in x.tree.iter().zip(&y.tree).enumerate() {
            prop_assert!(
                s.node == t.node
                    && s.parent == t.parent
                    && s.switch == t.switch
                    && s.activation == t.activation,
                "net {} tree node {} differs: {:?} vs {:?}",
                i,
                j,
                s,
                t
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimized router (scratch arena, stamped tree positions,
    /// touched-node accounting, bounding boxes) produces byte-identical
    /// results to the naive reference implementation.
    #[test]
    fn optimized_router_matches_reference(seed in 0u64..1_000_000) {
        let suite = random_suite(seed);
        let options = RouterOptions::for_modes(suite.modes);
        let optimized = Router::new(&suite.rrg, options).route(&suite.nets);
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&optimized, &reference)?;
    }

    /// Parity also holds with bounding boxes disabled (the pre-
    /// optimization full-fabric exploration).
    #[test]
    fn parity_without_bbox(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_add(0x5eed));
        let options = RouterOptions::for_modes(suite.modes).without_bbox();
        let optimized = Router::new(&suite.rrg, options).route(&suite.nets);
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&optimized, &reference)?;
    }

    /// Bounding-box growth preserves routability: every suite the
    /// unpruned router can route must also route with pruning enabled.
    #[test]
    fn bbox_growth_routes_every_feasible_net(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(3).wrapping_add(17));
        let unpruned_options = RouterOptions::for_modes(suite.modes).without_bbox();
        let unpruned = Router::new(&suite.rrg, unpruned_options).route(&suite.nets);
        if unpruned.success {
            let options = RouterOptions::for_modes(suite.modes);
            let pruned = Router::new(&suite.rrg, options).route(&suite.nets);
            prop_assert!(
                pruned.success,
                "bbox pruning lost routability on seed-feasible suite (seed {})",
                seed
            );
            prop_assert_eq!(pruned.unrouted_sinks, 0);
        }
    }

    /// Incremental rip-up parity also holds with full tear-down disabled
    /// in both implementations (the pre-optimization behaviour) — the
    /// two rip-up policies are each byte-identical across the pair.
    #[test]
    fn parity_with_full_reroute(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_add(0xbeef));
        let options = RouterOptions::for_modes(suite.modes).with_full_reroute();
        let optimized = Router::new(&suite.rrg, options).route(&suite.nets);
        let reference = route_reference(&suite.rrg, options, &suite.nets);
        assert_identical(&optimized, &reference)?;
    }

    /// A run that converges before any congested-net handling kicks in
    /// (within `reroute_all_iters` iterations) is byte-identical under
    /// incremental and full rip-up — the incremental path only ever
    /// diverges where tear-down policy matters.
    #[test]
    fn incremental_is_identical_to_full_reroute_until_congestion_handling(
        seed in 0u64..1_000_000
    ) {
        let suite = random_suite(seed.wrapping_mul(5).wrapping_add(1));
        let incremental_options = RouterOptions::for_modes(suite.modes);
        let full = Router::new(&suite.rrg, incremental_options.with_full_reroute())
            .route(&suite.nets);
        if full.iterations <= incremental_options.reroute_all_iters {
            let incremental = Router::new(&suite.rrg, incremental_options).route(&suite.nets);
            assert_identical(&incremental, &full)?;
        }
    }

    /// Incremental rip-up preserves routability: every suite the full
    /// tear-down router can route also routes incrementally, and the
    /// result passes the same structural checks (asserted by
    /// `assert_identical` against the naive incremental mirror).
    #[test]
    fn incremental_routes_every_full_reroute_feasible_suite(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(11).wrapping_add(5));
        let options = RouterOptions::for_modes(suite.modes);
        let full = Router::new(&suite.rrg, options.with_full_reroute()).route(&suite.nets);
        if full.success {
            let incremental = Router::new(&suite.rrg, options).route(&suite.nets);
            prop_assert!(
                incremental.success,
                "incremental rip-up lost routability (seed {})",
                seed
            );
            prop_assert_eq!(incremental.unrouted_sinks, 0);
        }
    }

    /// All-zero criticalities leave the cost expression on its original
    /// branch: `route_with_criticality` with zeros is byte-identical to
    /// plain `route`.
    #[test]
    fn zero_criticality_is_identical_to_plain_route(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(17).wrapping_add(29));
        let options = RouterOptions::for_modes(suite.modes);
        let plain = Router::new(&suite.rrg, options).route(&suite.nets);
        let zeros: Vec<Vec<f64>> = suite.nets.iter().map(|n| vec![0.0; n.sinks.len()]).collect();
        let crit = Router::new(&suite.rrg, options)
            .route_with_criticality(&suite.nets, &zeros);
        assert_identical(&plain, &crit)?;
    }

    /// Nonzero criticalities bias wire costs but must never lose
    /// routability on a congestion-feasible suite, and the result must
    /// still verify structurally per mode.
    #[test]
    fn criticality_preserves_routability(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(19).wrapping_add(3));
        let options = RouterOptions::for_modes(suite.modes);
        let plain = Router::new(&suite.rrg, options).route(&suite.nets);
        if plain.success {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc417);
            let crit: Vec<Vec<f64>> = suite
                .nets
                .iter()
                .map(|n| n.sinks.iter().map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let routed = Router::new(&suite.rrg, options)
                .route_with_criticality(&suite.nets, &crit);
            prop_assert!(
                routed.success,
                "criticality weighting lost routability (seed {})",
                seed
            );
            prop_assert_eq!(routed.unrouted_sinks, 0);
            prop_assert!(
                mm_route::verify_routing(&suite.rrg, &suite.nets, &routed, suite.modes).is_ok(),
                "verification failed (seed {})",
                seed
            );
        }
    }

    /// Explicit HPWL-seeded margins through `route_with_margins` match
    /// the options-derived path on both implementations.
    #[test]
    fn explicit_margins_match_implicit(seed in 0u64..1_000_000) {
        let suite = random_suite(seed.wrapping_mul(13).wrapping_add(7));
        let options = RouterOptions::for_modes(suite.modes);
        let margins = seeded_margins(&suite.rrg, &suite.nets, &options);
        let implicit = Router::new(&suite.rrg, options).route(&suite.nets);
        let explicit =
            Router::new(&suite.rrg, options).route_with_margins(&suite.nets, &margins);
        assert_identical(&implicit, &explicit)?;
        let reference = route_reference_with_margins(&suite.rrg, options, &suite.nets, &margins);
        assert_identical(&explicit, &reference)?;
    }
}

/// Reusing one router across repeated `route()` calls keeps the scratch
/// arena stable (no per-net allocations in steady state) and stays
/// deterministic.
#[test]
fn scratch_arena_reuse_is_deterministic_and_stable() {
    let suite = random_suite(0xfab);
    let options = RouterOptions::for_modes(suite.modes);
    let baseline = Router::new(&suite.rrg, options).route(&suite.nets);

    let mut reused = Router::new(&suite.rrg, options);
    let first = reused.route(&suite.nets);
    assert_eq!(first.iterations, baseline.iterations);
    let footprint = reused.scratch_footprint();
    for _ in 0..4 {
        let _ = reused.route(&suite.nets);
        assert_eq!(
            reused.scratch_footprint(),
            footprint,
            "steady-state route() must not grow the scratch arena"
        );
    }
}
