//! Building routable nets from placed circuits and validating routings.

use crate::{NetRoute, RouteNet, RouteSink, Routing};
use mm_arch::{RoutingGraph, RrKind, Site};
use mm_boolexpr::ModeSet;
use mm_netlist::{BlockId, LutCircuit};
use std::collections::HashMap;

/// Builds the route nets of one placed circuit.
///
/// Every driver block (input pad or LUT) with at least one consumer yields
/// one net from the `SOURCE` at its site to the `SINK` of every distinct
/// consumer site; all sinks carry `activation` (for an MDR mode routed in
/// isolation this is the mode's singleton set, or "always" for a static
/// circuit).
///
/// `site_of` maps each block to its placed site.
pub fn nets_for_circuit(
    circuit: &LutCircuit,
    rrg: &RoutingGraph,
    activation: ModeSet,
    mut site_of: impl FnMut(BlockId) -> Site,
) -> Vec<RouteNet> {
    // Distinct consumer blocks per driver.
    let mut sinks_of: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for (src, dst) in circuit.connections() {
        sinks_of.entry(src).or_default().push(dst);
    }
    let mut nets = Vec::new();
    for id in circuit.block_ids() {
        let Some(consumers) = sinks_of.get(&id) else {
            continue;
        };
        let source_site = site_of(id);
        let source = rrg.source_at(source_site);
        // Deduplicate consumer *sites* (a CLB sink node accepts the net
        // once even if the LUT reads it on several pins — and pin
        // duplication is already collapsed at the connection level).
        let mut sink_nodes: Vec<RouteSink> = Vec::with_capacity(consumers.len());
        for &c in consumers {
            let node = rrg.sink_at(site_of(c));
            if !sink_nodes.iter().any(|s| s.node == node) {
                sink_nodes.push(RouteSink { node, activation });
            }
        }
        nets.push(RouteNet {
            name: circuit.block(id).name().to_string(),
            source,
            sinks: sink_nodes,
        });
    }
    nets
}

/// Structurally verifies a routing against its nets:
///
/// * tree shape (source root, parents precede children, edges exist in
///   the RRG with the recorded switch);
/// * activation monotonicity (child ⊆ parent);
/// * every sink reached with a sufficient activation;
/// * per-(node, mode) capacity respected across all nets;
/// * the routing's own unreachable-sink accounting is consistent (a
///   successful routing must not report unreachable nets).
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn verify_routing(
    rrg: &RoutingGraph,
    nets: &[RouteNet],
    routing: &Routing,
    mode_count: usize,
) -> Result<(), String> {
    if nets.len() != routing.nets.len() {
        return Err(format!(
            "routing has {} nets, expected {}",
            routing.nets.len(),
            nets.len()
        ));
    }
    let unreachable = routing.unreachable_nets(nets);
    if !unreachable.is_empty() {
        return Err(format!(
            "unreachable sinks on nets [{}]",
            unreachable.join(", ")
        ));
    }
    let mut usage: HashMap<(usize, usize), u16> = HashMap::new();
    for (net, route) in nets.iter().zip(&routing.nets) {
        verify_tree(rrg, net, route)?;
        for t in &route.tree {
            for m in t.activation.iter() {
                if m >= mode_count {
                    return Err(format!(
                        "net '{}': node {} active in out-of-range mode {m}",
                        net.name, t.node
                    ));
                }
                *usage.entry((t.node.index(), m)).or_default() += 1;
            }
        }
    }
    for ((node, mode), used) in usage {
        let id = mm_arch::RrNodeId::from_index(node as u32);
        let cap = rrg.node(id).capacity;
        if used > cap {
            return Err(format!(
                "node {id} overused in mode {mode}: {used} > capacity {cap}"
            ));
        }
    }
    Ok(())
}

fn verify_tree(rrg: &RoutingGraph, net: &RouteNet, route: &NetRoute) -> Result<(), String> {
    if route.tree.is_empty() {
        return Err(format!("net '{}': empty tree", net.name));
    }
    if route.tree[0].node != net.source || route.tree[0].parent.is_some() {
        return Err(format!("net '{}': tree root is not the source", net.name));
    }
    for (i, t) in route.tree.iter().enumerate().skip(1) {
        let Some(p) = t.parent else {
            return Err(format!("net '{}': non-root node without parent", net.name));
        };
        if p as usize >= i {
            return Err(format!("net '{}': parent does not precede child", net.name));
        }
        let parent = &route.tree[p as usize];
        let edge_ok = rrg
            .edges(parent.node)
            .iter()
            .any(|e| e.to == t.node && e.switch == t.switch);
        if !edge_ok {
            return Err(format!(
                "net '{}': tree edge {} → {} missing in RRG",
                net.name, parent.node, t.node
            ));
        }
        if !t.activation.is_subset(parent.activation) {
            return Err(format!(
                "net '{}': activation grows downwards at {}",
                net.name, t.node
            ));
        }
    }
    if route.sink_pos.len() != net.sinks.len() {
        return Err(format!("net '{}': sink count mismatch", net.name));
    }
    for (si, sink) in net.sinks.iter().enumerate() {
        let pos = route.sink_pos[si] as usize;
        if pos >= route.tree.len() || route.tree[pos].node != sink.node {
            return Err(format!("net '{}': sink {si} not reached", net.name));
        }
        if !sink.activation.is_subset(route.tree[pos].activation) {
            return Err(format!(
                "net '{}': sink {si} activation not covered",
                net.name
            ));
        }
        if rrg.node(sink.node).kind != RrKind::Sink {
            return Err(format!("net '{}': sink {si} is not a SINK node", net.name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Router, RouterOptions};
    use mm_arch::Architecture;
    use mm_netlist::TruthTable;

    /// A placed two-LUT chain on a 3×3 array.
    fn placed_chain() -> (LutCircuit, HashMap<BlockId, Site>) {
        let mut c = LutCircuit::new("chain", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1, a], TruthTable::var(2, 0), false)
            .unwrap();
        let y = c.add_output("y", g2).unwrap();
        let mut sites = HashMap::new();
        sites.insert(a, Site::new(0, 2, 0));
        sites.insert(g1, Site::new(1, 2, 0));
        sites.insert(g2, Site::new(3, 2, 0));
        sites.insert(y, Site::new(4, 2, 1));
        (c, sites)
    }

    #[test]
    fn nets_built_per_driver() {
        let arch = Architecture::new(4, 3, 4);
        let rrg = RoutingGraph::build(&arch);
        let (c, sites) = placed_chain();
        let nets = nets_for_circuit(&c, &rrg, ModeSet::of(&[0]), |b| sites[&b]);
        // Drivers with consumers: a (→g1, →g2), g1 (→g2), g2 (→y).
        assert_eq!(nets.len(), 3);
        let a_net = nets.iter().find(|n| n.name == "a").unwrap();
        assert_eq!(a_net.sinks.len(), 2);
    }

    #[test]
    fn route_and_verify_chain() {
        let arch = Architecture::new(4, 3, 4);
        let rrg = RoutingGraph::build(&arch);
        let (c, sites) = placed_chain();
        let nets = nets_for_circuit(&c, &rrg, ModeSet::of(&[0]), |b| sites[&b]);
        let mut router = Router::new(&rrg, RouterOptions::default());
        let routing = router.route(&nets);
        assert!(routing.success);
        verify_routing(&rrg, &nets, &routing, 1).unwrap();
    }

    #[test]
    fn verify_rejects_corrupted_tree() {
        let arch = Architecture::new(4, 3, 4);
        let rrg = RoutingGraph::build(&arch);
        let (c, sites) = placed_chain();
        let nets = nets_for_circuit(&c, &rrg, ModeSet::of(&[0]), |b| sites[&b]);
        let mut router = Router::new(&rrg, RouterOptions::default());
        let mut routing = router.route(&nets);
        // Corrupt: break a parent link.
        if routing.nets[0].tree.len() > 2 {
            routing.nets[0].tree[2].parent = Some(2);
            assert!(verify_routing(&rrg, &nets, &routing, 1).is_err());
        }
    }

    #[test]
    fn verify_rejects_out_of_range_mode() {
        let arch = Architecture::new(4, 3, 4);
        let rrg = RoutingGraph::build(&arch);
        let (c, sites) = placed_chain();
        let nets = nets_for_circuit(&c, &rrg, ModeSet::of(&[1]), |b| sites[&b]);
        let mut router = Router::new(&rrg, RouterOptions::for_modes(2));
        let routing = router.route(&nets);
        assert!(routing.success);
        // Verifying with mode_count = 1 must flag mode 1.
        assert!(verify_routing(&rrg, &nets, &routing, 1).is_err());
        verify_routing(&rrg, &nets, &routing, 2).unwrap();
    }

    #[test]
    fn duplicate_consumer_sites_deduplicated() {
        let arch = Architecture::new(4, 3, 4);
        let rrg = RoutingGraph::build(&arch);
        let mut c = LutCircuit::new("dup", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![a, g1], TruthTable::var(2, 1), false)
            .unwrap();
        c.add_output("y", g2).unwrap();
        let mut sites = HashMap::new();
        sites.insert(a, Site::new(0, 1, 0));
        sites.insert(g1, Site::new(1, 1, 0));
        sites.insert(g2, Site::new(2, 1, 0));
        sites.insert(c.find("y").unwrap(), Site::new(3, 0, 0));
        let nets = nets_for_circuit(&c, &rrg, ModeSet::of(&[0]), |b| sites[&b]);
        let a_net = nets.iter().find(|n| n.name == "a").unwrap();
        assert_eq!(a_net.sinks.len(), 2, "g1 and g2 are distinct sites");
    }
}
