//! Naive reference formulation of the mode-aware PathFinder router.
//!
//! This module implements *exactly* the algorithm of [`crate::Router`]
//! with the straightforward data structures the optimized router
//! replaced: a fresh `BinaryHeap` and `HashMap`s per search, a per-net
//! `HashMap` for tree positions, and a full `node_count()` scan for the
//! overuse/history update. It exists for two reasons:
//!
//! * **differential testing** — the property tests in `tests/parity.rs`
//!   assert the optimized router produces byte-identical [`Routing`]
//!   results (same trees, same iteration count), so every data-structure
//!   optimization is provably semantics-preserving; the incremental
//!   rip-up, HPWL-seeded bounding boxes and the high-fanout Steiner
//!   decomposition are mirrored here so parity covers them too;
//! * **benchmarking** — `mmflow bench` and the criterion suite measure
//!   the optimized hot path against this baseline (run it with
//!   [`RouterOptions::without_bbox`] and
//!   [`RouterOptions::with_full_reroute`] for the pre-optimization
//!   behaviour).
//!
//! It is deliberately slow; never use it from a flow.

use crate::router::{
    fabric_extent, grow_margin, initial_margin, nearest_tree_point, net_bbox, steiner_bbox,
    steiner_segments, BBox, HeapEntry, Occupancy, BBOX_CONGESTION_GRACE,
};
use crate::{NetRoute, RouteNet, RouteTreeNode, RouterOptions, Routing};
use mm_arch::{RoutingGraph, RrKind, RrNodeId, SwitchId};
use mm_boolexpr::{ModeSet, ModeSpace};
use std::collections::{BinaryHeap, HashMap};

/// Routes `nets` with the naive reference implementation, with initial
/// bounding-box margins derived from the options (fixed or HPWL-seeded).
///
/// # Panics
///
/// Panics if `options.mode_count` is 0.
#[must_use]
pub fn route_reference(rrg: &RoutingGraph, options: RouterOptions, nets: &[RouteNet]) -> Routing {
    let extent = fabric_extent(rrg);
    let margins: Vec<usize> = nets
        .iter()
        .map(|net| initial_margin(rrg, net, &options, extent))
        .collect();
    ReferenceRouter::new(rrg, options).route(nets, margins)
}

/// [`route_reference`] with explicit per-net initial margins — the naive
/// counterpart of [`crate::Router::route_with_margins`].
///
/// # Panics
///
/// Panics if `options.mode_count` is 0 or `margins.len() != nets.len()`.
#[must_use]
pub fn route_reference_with_margins(
    rrg: &RoutingGraph,
    options: RouterOptions,
    nets: &[RouteNet],
    margins: &[usize],
) -> Routing {
    assert_eq!(margins.len(), nets.len(), "one margin per net");
    ReferenceRouter::new(rrg, options).route(nets, margins.to_vec())
}

struct ReferenceRouter<'a> {
    rrg: &'a RoutingGraph,
    options: RouterOptions,
    space: ModeSpace,
    occ: Occupancy,
    switch_use: Occupancy,
    history: Vec<f32>,
    pres_fac: f64,
    max_x: u16,
    max_y: u16,
}

impl<'a> ReferenceRouter<'a> {
    fn new(rrg: &'a RoutingGraph, options: RouterOptions) -> Self {
        assert!(options.mode_count >= 1, "mode_count must be positive");
        let n = rrg.node_count();
        let (mut max_x, mut max_y) = (0u16, 0u16);
        for i in 0..n {
            let node = rrg.node(RrNodeId::from_index(i as u32));
            max_x = max_x.max(node.x);
            max_y = max_y.max(node.y);
        }
        Self {
            rrg,
            space: ModeSpace::new(options.mode_count),
            occ: Occupancy::new(n, options.mode_count),
            switch_use: Occupancy::new(rrg.switch_count(), options.mode_count),
            history: vec![0.0; n],
            pres_fac: options.pres_fac_first,
            max_x,
            max_y,
            options,
        }
    }

    fn base_cost(&self, kind: RrKind) -> f64 {
        match kind {
            RrKind::ChanX | RrKind::ChanY => 1.0,
            RrKind::Ipin => 0.95,
            RrKind::Sink => 0.0,
            RrKind::Opin | RrKind::Source => 1.0,
        }
    }

    fn node_cost(&self, node: u32, act: ModeSet) -> f64 {
        let rr = self.rrg.node(RrNodeId::from_index(node));
        let occ_eff = f64::from(self.occ.max_in(node as usize, act));
        let over = (occ_eff + 1.0 - f64::from(rr.capacity)).max(0.0);
        let pres = 1.0 + self.pres_fac * over;
        self.base_cost(rr.kind) * (1.0 + f64::from(self.history[node as usize])) * pres
    }

    fn switch_activation(&self, switch: SwitchId) -> ModeSet {
        let mut act = ModeSet::EMPTY;
        for m in 0..self.options.mode_count {
            if self.switch_use.counts[switch.index() * self.switch_use.modes + m] > 0 {
                act.insert(m);
            }
        }
        act
    }

    fn share_factor(&self, switch: Option<SwitchId>, act: ModeSet) -> f64 {
        if self.options.mode_count == 1
            || (self.options.share_discount == 0.0 && self.options.param_penalty == 0.0)
        {
            return 1.0;
        }
        let Some(s) = switch else { return 1.0 };
        let current = self.switch_activation(s);
        let after = current | act;
        let before_param = current.is_parameterized(self.space);
        let after_param = after.is_parameterized(self.space);
        if after_param && !before_param && current.is_never() {
            1.0 + self.options.param_penalty
        } else if before_param && !after_param {
            1.0 - self.options.share_discount
        } else if before_param && act.is_subset(current) {
            1.0 - self.options.share_discount * 0.5
        } else {
            1.0
        }
    }

    fn heuristic(&self, node: u32, target: u32) -> f64 {
        let a = self.rrg.node(RrNodeId::from_index(node));
        let b = self.rrg.node(RrNodeId::from_index(target));
        let dx = (i32::from(a.x) - i32::from(b.x)).unsigned_abs();
        let dy = (i32::from(a.y) - i32::from(b.y)).unsigned_abs();
        self.options.astar_fac * f64::from(dx + dy)
    }

    /// The fabric extent `max(max_x, max_y)` — the margin cap.
    fn extent(&self) -> usize {
        usize::from(self.max_x.max(self.max_y))
    }

    fn route(&mut self, nets: &[RouteNet], mut net_margin: Vec<usize>) -> Routing {
        // Steiner segment boxes start from the flat `bbox_margin`, not
        // the HPWL-seeded net margin (which scales with the whole net's
        // extent), and widen only under congestion — the exact mirror of
        // the optimized router's `steiner_margin`.
        let mut steiner_margin = vec![self.options.bbox_margin.min(self.extent()); nets.len()];
        let mut routes: Vec<NetRoute> = vec![NetRoute::default(); nets.len()];
        let mut iterations = 0;
        let mut success = false;
        let mut overused_nodes = 0;
        let mut unrouted = 0usize;
        let reroute_all = self.options.reroute_all_iters.max(1);

        for iter in 0..self.options.max_iterations {
            iterations = iter + 1;
            let mut rerouted_any = false;
            for (i, net) in nets.iter().enumerate() {
                let warmup = iter < reroute_all;
                let congested = !warmup && self.route_is_congested(&routes[i]);
                if !warmup && !congested {
                    continue;
                }
                if congested && iter >= reroute_all + BBOX_CONGESTION_GRACE {
                    net_margin[i] = grow_margin(net_margin[i], self.extent());
                    steiner_margin[i] = grow_margin(steiner_margin[i], self.extent());
                }
                rerouted_any = true;
                if warmup || !self.options.incremental {
                    self.rip_up(&routes[i]);
                    routes[i] = self.route_net(net, &mut net_margin[i], steiner_margin[i]);
                } else {
                    let mut route = std::mem::take(&mut routes[i]);
                    self.reroute_incremental(
                        net,
                        &mut route,
                        &mut net_margin[i],
                        steiner_margin[i],
                    );
                    routes[i] = route;
                }
            }

            unrouted = nets
                .iter()
                .zip(&routes)
                .map(|(net, route)| {
                    net.sinks
                        .iter()
                        .zip(&route.sink_pos)
                        .filter(|(sink, &pos)| {
                            route
                                .tree
                                .get(pos as usize)
                                .is_none_or(|t| t.node != sink.node)
                        })
                        .count()
                })
                .sum();
            if unrouted > 0 {
                break;
            }

            // The naive full scan the optimized router's touched-node
            // accounting replaces.
            overused_nodes = 0;
            for node in 0..self.rrg.node_count() {
                let cap = self.rrg.node(RrNodeId::from_index(node as u32)).capacity;
                let max = self.occ.max_all(node);
                if max > cap {
                    overused_nodes += 1;
                    self.history[node] += (self.options.history_cost * f64::from(max - cap)) as f32;
                }
            }
            if overused_nodes == 0 {
                success = true;
                break;
            }
            if !rerouted_any {
                break;
            }
            self.pres_fac *= self.options.pres_fac_mult;
        }

        Routing {
            nets: routes,
            iterations,
            success: success && unrouted == 0,
            overused_nodes,
            unrouted_sinks: unrouted,
        }
    }

    fn route_is_congested(&self, route: &NetRoute) -> bool {
        route.tree.iter().any(|t| {
            let cap = self.rrg.node(t.node).capacity;
            self.occ.max_all(t.node.index()) > cap
        })
    }

    fn rip_up(&mut self, route: &NetRoute) {
        for t in &route.tree {
            self.occ.remove(t.node.index(), t.activation);
            if let Some(s) = t.switch {
                self.switch_use.remove(s.index(), t.activation);
            }
        }
    }

    /// Farthest-first sink order over `sinks` (indices into the net's
    /// sink list). Equal-distance sinks order by ascending sink index via
    /// the explicit `(Reverse(distance), index)` key — the exact key the
    /// optimized router sorts by — rather than leaning on stable-sort
    /// artefacts, so the order is pinned independently of the sort
    /// algorithm or platform.
    fn order_sinks(&self, net: &RouteNet, mut sinks: Vec<usize>) -> Vec<usize> {
        let src = self.rrg.node(net.source);
        sinks.sort_unstable_by_key(|&i| {
            let s = self.rrg.node(net.sinks[i].node);
            let d = (i32::from(s.x) - i32::from(src.x)).abs()
                + (i32::from(s.y) - i32::from(src.y)).abs();
            (std::cmp::Reverse(d), i)
        });
        sinks
    }

    fn route_net(&mut self, net: &RouteNet, margin: &mut usize, steiner_margin: usize) -> NetRoute {
        let mut tree: Vec<RouteTreeNode> = Vec::with_capacity(net.sinks.len() * 8);
        let mut tree_pos: HashMap<u32, u32> = HashMap::new();

        let net_act: ModeSet = net
            .sinks
            .iter()
            .fold(ModeSet::EMPTY, |a, s| a | s.activation);
        tree.push(RouteTreeNode {
            node: net.source,
            parent: None,
            switch: None,
            activation: net_act,
        });
        tree_pos.insert(net.source.index() as u32, 0);
        self.occ.add(net.source.index(), net_act);

        let mut sink_pos = vec![0u32; net.sinks.len()];
        if self.options.steiner_fanout > 0 && net.sinks.len() >= self.options.steiner_fanout {
            self.route_steiner(net, &mut tree, &mut tree_pos, &mut sink_pos, steiner_margin);
            return NetRoute { tree, sink_pos };
        }
        let order = self.order_sinks(net, (0..net.sinks.len()).collect());
        self.route_sinks(net, &mut tree, &mut tree_pos, &mut sink_pos, &order, margin);
        NetRoute { tree, sink_pos }
    }

    /// The naive mirror of the optimized router's Steiner mode: the same
    /// shared [`steiner_segments`] topology routed segment by segment
    /// inside [`steiner_bbox`] boxes, with per-segment local growth.
    fn route_steiner(
        &mut self,
        net: &RouteNet,
        tree: &mut Vec<RouteTreeNode>,
        tree_pos: &mut HashMap<u32, u32>,
        sink_pos: &mut [u32],
        margin_base: usize,
    ) {
        for seg in steiner_segments(self.rrg, net) {
            let si = seg.sink as usize;
            let sink = net.sinks[si];
            if let Some(&pos) = tree_pos.get(&(sink.node.index() as u32)) {
                self.extend_activation(tree, pos, sink.activation);
                sink_pos[si] = pos;
                continue;
            }
            // Same deterministic anchor as the optimized router: the
            // tree node nearest the topological attach point.
            let (ax, ay) = nearest_tree_point(self.rrg, tree, seg.ax, seg.ay);
            let mut margin = margin_base;
            let path = loop {
                let bbox =
                    steiner_bbox(self.rrg, sink.node, ax, ay, margin, self.max_x, self.max_y);
                match self.search(tree, sink.node, sink.activation, bbox) {
                    Some(path) => break Some(path),
                    None if bbox.covers_fabric(self.max_x, self.max_y) => break None,
                    None => margin = grow_margin(margin, self.extent()),
                }
            };
            match path {
                Some(path) => {
                    self.claim_path(tree, tree_pos, sink_pos, si, sink.activation, &path);
                }
                None => sink_pos[si] = 0,
            }
        }
    }

    /// Claims a search result (tree node first, sink last) into the net's
    /// tree — the naive mirror of the optimized router's `claim_path`.
    fn claim_path(
        &mut self,
        tree: &mut Vec<RouteTreeNode>,
        tree_pos: &mut HashMap<u32, u32>,
        sink_pos: &mut [u32],
        si: usize,
        act: ModeSet,
        path: &[(u32, Option<SwitchId>)],
    ) {
        let join = tree_pos[&path[0].0];
        self.extend_activation(tree, join, act);
        let mut parent = join;
        for &(node, switch) in &path[1..] {
            let idx = tree.len() as u32;
            tree.push(RouteTreeNode {
                node: RrNodeId::from_index(node),
                parent: Some(parent),
                switch,
                activation: act,
            });
            self.occ.add(node as usize, act);
            if let Some(s) = switch {
                self.switch_use.add(s.index(), act);
            }
            tree_pos.insert(node, idx);
            parent = idx;
        }
        sink_pos[si] = parent;
    }

    /// The incremental rip-up mirror of
    /// [`crate::Router`]'s congested-net handling: prune subtrees through
    /// overused nodes, keep (and re-claim) the rest with renarrowed
    /// activations, then re-route only the lost sinks.
    fn reroute_incremental(
        &mut self,
        net: &RouteNet,
        route: &mut NetRoute,
        margin: &mut usize,
        steiner_margin: usize,
    ) {
        let tree_len = route.tree.len();
        let mut blocked = vec![false; tree_len];
        for idx in 0..tree_len {
            let t = route.tree[idx];
            let over = self.occ.max_all(t.node.index()) > self.rrg.node(t.node).capacity;
            let parent_blocked = t.parent.is_some_and(|p| blocked[p as usize]);
            blocked[idx] = over || parent_blocked;
        }

        let mut keep = vec![false; tree_len];
        let mut keep_act = vec![ModeSet::EMPTY; tree_len];
        let mut lost: Vec<usize> = Vec::new();
        let mut sink_lost = vec![false; net.sinks.len()];
        keep[0] = true;
        let root_blocked = blocked[0];
        for (si, sink) in net.sinks.iter().enumerate() {
            let pos = route.sink_pos[si];
            if root_blocked || blocked[pos as usize] {
                lost.push(si);
                sink_lost[si] = true;
                continue;
            }
            let mut cur = Some(pos);
            while let Some(p) = cur {
                keep[p as usize] = true;
                keep_act[p as usize] |= sink.activation;
                cur = route.tree[p as usize].parent;
            }
        }
        if lost.is_empty() {
            self.rip_up(route);
            *route = self.route_net(net, margin, steiner_margin);
            return;
        }

        self.rip_up(route);
        let net_act: ModeSet = net
            .sinks
            .iter()
            .fold(ModeSet::EMPTY, |a, s| a | s.activation);
        let mut remap = vec![0u32; tree_len];
        let mut new_tree: Vec<RouteTreeNode> = Vec::with_capacity(tree_len);
        let mut tree_pos: HashMap<u32, u32> = HashMap::new();
        for idx in 0..tree_len {
            if !keep[idx] {
                continue;
            }
            let t = route.tree[idx];
            let new_index = new_tree.len() as u32;
            remap[idx] = new_index;
            let activation = if idx == 0 { net_act } else { keep_act[idx] };
            new_tree.push(RouteTreeNode {
                node: t.node,
                parent: t.parent.map(|p| remap[p as usize]),
                switch: t.switch,
                activation,
            });
            self.occ.add(t.node.index(), activation);
            if let Some(s) = t.switch {
                self.switch_use.add(s.index(), activation);
            }
            tree_pos.insert(t.node.index() as u32, new_index);
        }
        route.tree = new_tree;
        for si in 0..net.sinks.len() {
            if !sink_lost[si] {
                route.sink_pos[si] = remap[route.sink_pos[si] as usize];
            }
        }

        let order = self.order_sinks(net, lost);
        let mut sink_pos = std::mem::take(&mut route.sink_pos);
        self.route_sinks(
            net,
            &mut route.tree,
            &mut tree_pos,
            &mut sink_pos,
            &order,
            margin,
        );
        route.sink_pos = sink_pos;
    }

    /// Routes the sinks listed in `order` into the net's existing tree.
    fn route_sinks(
        &mut self,
        net: &RouteNet,
        tree: &mut Vec<RouteTreeNode>,
        tree_pos: &mut HashMap<u32, u32>,
        sink_pos: &mut [u32],
        order: &[usize],
        margin: &mut usize,
    ) {
        for &si in order {
            let sink = net.sinks[si];
            if let Some(&pos) = tree_pos.get(&(sink.node.index() as u32)) {
                self.extend_activation(tree, pos, sink.activation);
                sink_pos[si] = pos;
                continue;
            }
            let path = loop {
                let bbox = net_bbox(self.rrg, net, *margin, self.max_x, self.max_y);
                match self.search(tree, sink.node, sink.activation, bbox) {
                    Some(path) => break Some(path),
                    None if bbox.covers_fabric(self.max_x, self.max_y) => break None,
                    None => *margin = grow_margin(*margin, self.extent()),
                }
            };
            match path {
                Some(path) => {
                    self.claim_path(tree, tree_pos, sink_pos, si, sink.activation, &path);
                }
                None => {
                    sink_pos[si] = 0;
                }
            }
        }
    }

    fn extend_activation(&mut self, tree: &mut [RouteTreeNode], pos: u32, act: ModeSet) {
        let mut cur = Some(pos);
        while let Some(p) = cur {
            let t = &mut tree[p as usize];
            let delta = act & t.activation.complement(self.space);
            if delta.is_never() {
                break;
            }
            t.activation |= delta;
            self.occ.add(t.node.index(), delta);
            if let Some(s) = t.switch {
                self.switch_use.add(s.index(), delta);
            }
            cur = t.parent;
        }
    }

    /// A*-guided Dijkstra with fresh allocations per search: a new heap
    /// and hash-map visit state every time.
    #[allow(clippy::type_complexity)]
    fn search(
        &mut self,
        tree: &[RouteTreeNode],
        target: RrNodeId,
        act: ModeSet,
        bbox: BBox,
    ) -> Option<Vec<(u32, Option<SwitchId>)>> {
        let target_idx = target.index() as u32;
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut dist: HashMap<u32, f64> = HashMap::new();
        let mut prev: HashMap<u32, (u32, Option<SwitchId>)> = HashMap::new();

        for t in tree {
            let node = t.node.index() as u32;
            let rr = self.rrg.node(t.node);
            if !bbox.contains(rr.x, rr.y) {
                continue;
            }
            dist.insert(node, 0.0);
            prev.insert(node, (node, None));
            heap.push(HeapEntry {
                f: self.heuristic(node, target_idx),
                g: 0.0,
                node,
            });
        }

        let mut found = false;
        while let Some(entry) = heap.pop() {
            let u = entry.node;
            if entry.g > dist[&u] + 1e-12 {
                continue; // stale
            }
            if u == target_idx {
                found = true;
                break;
            }
            for e in self.rrg.edges(RrNodeId::from_index(u)) {
                let v = e.to.index() as u32;
                let to = self.rrg.node(e.to);
                match to.kind {
                    RrKind::Sink if v != target_idx => continue,
                    RrKind::Source => continue,
                    RrKind::Ipin => {
                        let leads = self
                            .rrg
                            .edges(e.to)
                            .first()
                            .is_some_and(|se| se.to.index() as u32 == target_idx);
                        if !leads {
                            continue;
                        }
                    }
                    _ => {}
                }
                if !bbox.contains(to.x, to.y) {
                    continue;
                }
                let g = entry.g + self.node_cost(v, act) * self.share_factor(e.switch, act);
                let better = match dist.get(&v) {
                    None => true,
                    Some(&d) => g + 1e-12 < d,
                };
                if better {
                    dist.insert(v, g);
                    prev.insert(v, (u, e.switch));
                    heap.push(HeapEntry {
                        f: g + self.heuristic(v, target_idx),
                        g,
                        node: v,
                    });
                }
            }
        }
        if !found {
            return None;
        }

        let mut path = vec![];
        let mut cur = target_idx;
        loop {
            let (p, sw) = prev[&cur];
            path.push((cur, sw));
            if p == cur {
                break;
            }
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}
