//! Routing for the multi-mode tool flow.
//!
//! A mode-aware PathFinder negotiated-congestion [`Router`] over the
//! routing-resource graph of `mm-arch`:
//!
//! * with one mode it is the conventional VPR router used for the MDR
//!   baseline;
//! * with several modes it is a TRoute-style *connection router*: every
//!   connection carries an activation function and wires may be shared by
//!   connections whose activation sets are disjoint (they are never live
//!   simultaneously);
//! * above a configurable fanout threshold
//!   ([`RouterOptions::steiner_fanout`]) nets are decomposed along a
//!   rectilinear (Hanan-grid) Steiner topology and routed segment by
//!   segment inside small local boxes, so broadcast-shaped nets stop
//!   paying a whole-fabric search per sink.
//!
//! [`min_channel_width`] implements VPR's binary search for the smallest
//! routable channel width, which the paper relaxes by 20% for its
//! experiments; [`nets_for_circuit`] and [`verify_routing`] connect placed
//! circuits to the router and check the result.
//!
//! # Example
//!
//! ```
//! use mm_arch::{Architecture, RoutingGraph, Site};
//! use mm_boolexpr::ModeSet;
//! use mm_route::{Router, RouterOptions, RouteNet, RouteSink};
//!
//! let arch = Architecture::new(4, 4, 4);
//! let rrg = RoutingGraph::build(&arch);
//! let net = RouteNet {
//!     name: "demo".into(),
//!     source: rrg.logic_source(Site::new(1, 1, 0)),
//!     sinks: vec![RouteSink {
//!         node: rrg.logic_sink(Site::new(4, 4, 0)),
//!         activation: ModeSet::of(&[0]),
//!     }],
//! };
//! let mut router = Router::new(&rrg, RouterOptions::default());
//! let routing = router.route(std::slice::from_ref(&net));
//! assert!(routing.success);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod minw;
mod nets;
pub mod reference;
mod router;

pub use minw::{min_channel_width, relaxed_width, MinWidthResult};
pub use nets::{nets_for_circuit, verify_routing};
pub use router::{
    seeded_margins, NetRoute, RouteNet, RouteSink, RouteTreeNode, Router, RouterOptions, Routing,
    MAX_ROUTE_CRIT,
};
