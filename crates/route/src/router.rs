//! Mode-aware PathFinder negotiated-congestion routing.
//!
//! The core is the classic PathFinder/VPR algorithm: route every net with
//! an A*-guided Dijkstra over the routing-resource graph, allow resource
//! overuse, then iterate with growing present-congestion penalties and
//! accumulated history costs until the solution is feasible.
//!
//! The multi-mode twist (TRoute, Vansteenkiste et al. [5]) is that every
//! connection carries an *activation function* — the set of modes in which
//! it must be realised — and occupancy is tracked **per mode**: two
//! connections may share a wire when their activation sets are disjoint,
//! because they are never active at the same time. With a single mode this
//! degenerates to standard PathFinder, which is how the MDR baseline is
//! routed.
//!
//! # Hot-path engineering
//!
//! [`Router`] is built for repeated rip-up-and-reroute over the same RRG
//! and keeps every piece of search state in a persistent, generation-
//! stamped scratch arena:
//!
//! * the A* heap, path buffer and sink-order buffer are reused across
//!   nets and across [`Router::route`] calls;
//! * `tree_pos` (RRG node → route-tree index) is a stamped `Vec<u32>`
//!   instead of a per-net hash map;
//! * overuse/history accounting walks only the nodes *touched* since the
//!   previous evaluation instead of scanning the whole graph;
//! * every net search is confined to a VPR-style bounding box around the
//!   net's terminals ([`RouterOptions::bbox_margin`]) that grows — first
//!   on unreachable sinks, then on persistent congestion — until it
//!   covers the fabric, so pruning never costs routability.
//!
//! The naive, allocation-per-net formulation of the same algorithm lives
//! in [`crate::reference`]; the two are kept byte-identical by the
//! differential property tests in `tests/parity.rs`.

use mm_arch::{RoutingGraph, RrKind, RrNodeId, SwitchId};
use mm_boolexpr::{ModeSet, ModeSpace};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One sink of a [`RouteNet`]: a `SINK` node plus the modes in which the
/// connection must exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSink {
    /// Target `SINK` node.
    pub node: RrNodeId,
    /// Activation function of the connection.
    pub activation: ModeSet,
}

/// A net to route: one source, any number of activation-annotated sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteNet {
    /// Net name (diagnostics only).
    pub name: String,
    /// The `SOURCE` node of the driver site.
    pub source: RrNodeId,
    /// Sinks with activations.
    pub sinks: Vec<RouteSink>,
}

/// Options of the router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// Maximum rip-up-and-reroute iterations before giving up.
    pub max_iterations: usize,
    /// Present-congestion factor of the first iteration — the starting
    /// point of the revisited-PathFinder cost schedule. Lower values let
    /// early iterations overuse freely and discover short paths; higher
    /// values make the very first iteration congestion-averse.
    pub pres_fac_first: f64,
    /// Present-congestion growth per iteration: after every rip-up pass
    /// the present factor is multiplied by this, so congestion pressure
    /// ramps geometrically until the solution is feasible.
    pub pres_fac_mult: f64,
    /// History cost added per unit of overuse per iteration — the
    /// long-term memory of the negotiation. 0 disables history entirely
    /// (pure present-cost routing); larger values make persistently
    /// contested wires expensive faster.
    pub history_cost: f64,
    /// A* aggressiveness: weight of the distance-to-target estimate.
    /// 1.0 is admissible for unit-cost wires; VPR uses 1.2.
    pub astar_fac: f64,
    /// Number of modes (1 for conventional single-circuit routing).
    pub mode_count: usize,
    /// Reconfiguration-aware cost shaping (TRoute-style): discount applied
    /// to an edge whose switch would become *less* parameterized by this
    /// connection (e.g. a mode-0 wire reused by the complementary mode-1
    /// connection turns static). 0 disables sharing-seeking.
    pub share_discount: f64,
    /// Penalty applied to an edge whose switch would become parameterized
    /// (a freshly used mode-exclusive switch).
    pub param_penalty: f64,
    /// Iterations during which every net is rerouted even without
    /// congestion — lets the sharing-aware cost converge before the
    /// router goes incremental.
    pub reroute_all_iters: usize,
    /// Margin (in grid units) added around a net's terminal extent to
    /// form its expansion bounding box. The box grows automatically when
    /// a sink is unreachable inside it or when the net stays congested,
    /// so routability is never lost to pruning. `usize::MAX` disables
    /// bounding boxes (full-fabric exploration).
    pub bbox_margin: usize,
    /// HPWL seeding of the initial bounding boxes: when non-zero, a net's
    /// initial margin is `max(bbox_margin, hpwl / hpwl_margin_div)` where
    /// `hpwl` is the half-perimeter of its terminal extent — large nets
    /// (whose detours scale with their span) start with proportionally
    /// more slack instead of the fixed margin. `0` disables seeding.
    /// [`seeded_margins`]/[`Router::route_with_margins`] expose the
    /// same per-net margins for explicit control.
    pub hpwl_margin_div: usize,
    /// Incremental rip-up: congested nets keep the subtrees that avoid
    /// every overused node and re-route only the sinks they lost, instead
    /// of being torn down wholesale each iteration.
    pub incremental: bool,
    /// Fanout threshold for rectilinear-Steiner net decomposition: a net
    /// with at least this many sinks is routed segment by segment along a
    /// Hanan-grid Steiner topology ([`Router`] builds the topology with a
    /// Prim-style nearest-terminal sweep), each segment confined to a
    /// small local bounding box instead of the whole-net box — the
    /// sink-by-sink searches of a fanout-100 broadcast net stop scaling
    /// with the net's full extent. `0` (the default) disables Steiner
    /// decomposition entirely, keeping every routing byte-identical to
    /// the sink-by-sink router.
    pub steiner_fanout: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            max_iterations: 40,
            pres_fac_first: 0.5,
            pres_fac_mult: 1.8,
            history_cost: 1.0,
            astar_fac: 1.2,
            mode_count: 1,
            share_discount: 0.35,
            param_penalty: 0.2,
            reroute_all_iters: 3,
            bbox_margin: 3,
            hpwl_margin_div: 4,
            incremental: true,
            steiner_fanout: 0,
        }
    }
}

impl RouterOptions {
    /// Options for a multi-mode (tunable-circuit) routing problem.
    #[must_use]
    pub fn for_modes(mode_count: usize) -> Self {
        Self {
            mode_count,
            ..Self::default()
        }
    }

    /// Returns a copy with bounding-box pruning disabled (full-fabric
    /// search, the pre-optimization behaviour).
    #[must_use]
    pub fn without_bbox(mut self) -> Self {
        self.bbox_margin = usize::MAX;
        self
    }

    /// Returns a copy with incremental rip-up disabled (every congested
    /// net is fully torn down and re-routed — the pre-optimization
    /// behaviour).
    #[must_use]
    pub fn with_full_reroute(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Returns a copy with Steiner decomposition enabled for nets of at
    /// least `fanout` sinks (see [`RouterOptions::steiner_fanout`]).
    #[must_use]
    pub fn with_steiner(mut self, fanout: usize) -> Self {
        self.steiner_fanout = fanout;
        self
    }

    /// A stable fingerprint of every option that affects the produced
    /// routing (floats by bit pattern), used by the batch engine's stage
    /// cache keys.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "router-v4;it={};pf={:016x};pfm={:016x};hf={:016x};as={:016x};m={};sd={:016x};pp={:016x};ra={};bb={};hd={};inc={};sf={}",
            self.max_iterations,
            self.pres_fac_first.to_bits(),
            self.pres_fac_mult.to_bits(),
            self.history_cost.to_bits(),
            self.astar_fac.to_bits(),
            self.mode_count,
            self.share_discount.to_bits(),
            self.param_penalty.to_bits(),
            self.reroute_all_iters,
            self.bbox_margin,
            self.hpwl_margin_div,
            u8::from(self.incremental),
            self.steiner_fanout,
        )
    }
}

/// Upper clamp on per-sink routing criticalities: even the most critical
/// connection keeps a sliver of congestion sensitivity, so negotiation
/// can still price it off an overused wire.
pub const MAX_ROUTE_CRIT: f64 = 0.99;

/// One node of a routed net's route tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteTreeNode {
    /// The RRG node.
    pub node: RrNodeId,
    /// Index of the parent tree node (`None` for the source).
    pub parent: Option<u32>,
    /// The switch on the edge from the parent (`None` for the source and
    /// for hard-wired edges).
    pub switch: Option<SwitchId>,
    /// Modes in which this node carries the net — the OR of the
    /// activations of all sinks below it.
    pub activation: ModeSet,
}

/// The routed tree of one net.
#[derive(Debug, Clone, Default)]
pub struct NetRoute {
    /// Tree nodes; index 0 is the source, parents precede children.
    pub tree: Vec<RouteTreeNode>,
    /// For each sink (in [`RouteNet::sinks`] order) the index of its tree
    /// node.
    pub sink_pos: Vec<u32>,
}

impl NetRoute {
    /// Number of wire-segment nodes in the tree that are active in `mode`.
    #[must_use]
    pub fn wires_in_mode(&self, rrg: &RoutingGraph, mode: usize) -> usize {
        self.tree
            .iter()
            .filter(|t| {
                t.activation.contains(mode)
                    && matches!(rrg.node(t.node).kind, RrKind::ChanX | RrKind::ChanY)
            })
            .count()
    }

    /// Number of wire-segment nodes on the path from the source to sink
    /// `sink_index` — the unit-delay routed length of that connection.
    ///
    /// # Panics
    ///
    /// Panics if `sink_index` is out of range.
    #[must_use]
    pub fn wires_to_sink(&self, rrg: &RoutingGraph, sink_index: usize) -> usize {
        let mut wires = 0usize;
        let mut cur = Some(self.sink_pos[sink_index]);
        while let Some(p) = cur {
            let t = &self.tree[p as usize];
            if matches!(rrg.node(t.node).kind, RrKind::ChanX | RrKind::ChanY) {
                wires += 1;
            }
            cur = t.parent;
        }
        wires
    }

    /// Number of wire-segment nodes in the tree (any mode).
    #[must_use]
    pub fn wire_count(&self, rrg: &RoutingGraph) -> usize {
        self.tree
            .iter()
            .filter(|t| matches!(rrg.node(t.node).kind, RrKind::ChanX | RrKind::ChanY))
            .count()
    }
}

/// Result of a routing run.
#[derive(Debug, Clone)]
pub struct Routing {
    /// One route per net, in input order.
    pub nets: Vec<NetRoute>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the final solution is overuse-free and complete.
    pub success: bool,
    /// Number of overused nodes at the end (0 on success).
    pub overused_nodes: usize,
    /// Sinks for which no path exists at all (0 on success).
    pub unrouted_sinks: usize,
}

impl Routing {
    /// Total wire segments used by all nets (wires shared across modes
    /// count once).
    #[must_use]
    pub fn total_wires(&self, rrg: &RoutingGraph) -> usize {
        self.nets.iter().map(|n| n.wire_count(rrg)).sum()
    }

    /// Wire segments used in `mode` — the per-mode wire usage of the
    /// paper's Fig. 7.
    #[must_use]
    pub fn wires_in_mode(&self, rrg: &RoutingGraph, mode: usize) -> usize {
        self.nets.iter().map(|n| n.wires_in_mode(rrg, mode)).sum()
    }

    /// Names of the nets with at least one sink no path reached
    /// ([`Routing::unrouted_sinks`] counts them) — what a flow reports
    /// when it fails the route stage on hard unreachability instead of
    /// retrying at wider channels.
    #[must_use]
    pub fn unreachable_nets<'n>(&self, nets: &'n [RouteNet]) -> Vec<&'n str> {
        nets.iter()
            .zip(&self.nets)
            .filter(|(net, route)| {
                net.sinks.iter().zip(&route.sink_pos).any(|(sink, &pos)| {
                    route
                        .tree
                        .get(pos as usize)
                        .is_none_or(|t| t.node != sink.node)
                })
            })
            .map(|(net, _)| net.name.as_str())
            .collect()
    }
}

/// Per-(node, mode) usage counts.
pub(crate) struct Occupancy {
    pub(crate) counts: Vec<u16>,
    pub(crate) modes: usize,
}

impl Occupancy {
    pub(crate) fn new(nodes: usize, modes: usize) -> Self {
        Self {
            counts: vec![0; nodes * modes],
            modes,
        }
    }

    pub(crate) fn add(&mut self, node: usize, act: ModeSet) {
        for m in act.iter() {
            self.counts[node * self.modes + m] += 1;
        }
    }

    pub(crate) fn remove(&mut self, node: usize, act: ModeSet) {
        for m in act.iter() {
            let c = &mut self.counts[node * self.modes + m];
            debug_assert!(*c > 0, "occupancy underflow");
            *c -= 1;
        }
    }

    /// Maximum usage over the modes of `act`.
    pub(crate) fn max_in(&self, node: usize, act: ModeSet) -> u16 {
        act.iter()
            .map(|m| self.counts[node * self.modes + m])
            .max()
            .unwrap_or(0)
    }

    /// Maximum usage over all modes.
    pub(crate) fn max_all(&self, node: usize) -> u16 {
        (0..self.modes)
            .map(|m| self.counts[node * self.modes + m])
            .max()
            .unwrap_or(0)
    }
}

/// Min-heap entry for the A* search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapEntry {
    /// Estimated total cost (g + h).
    pub(crate) f: f64,
    /// Cost to come.
    pub(crate) g: f64,
    pub(crate) node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we need the smallest f.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A net's expansion bounding box (inclusive, grid coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BBox {
    pub(crate) x0: u16,
    pub(crate) y0: u16,
    pub(crate) x1: u16,
    pub(crate) y1: u16,
}

impl BBox {
    #[inline]
    pub(crate) fn contains(&self, x: u16, y: u16) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Whether the box already spans the whole fabric — growing it
    /// further cannot help.
    pub(crate) fn covers_fabric(&self, max_x: u16, max_y: u16) -> bool {
        self.x0 == 0 && self.y0 == 0 && self.x1 >= max_x && self.y1 >= max_y
    }
}

/// The bounding box of a net's terminals, expanded by `margin` and
/// clamped to the fabric extent.
pub(crate) fn net_bbox(
    rrg: &RoutingGraph,
    net: &RouteNet,
    margin: usize,
    max_x: u16,
    max_y: u16,
) -> BBox {
    let src = rrg.node(net.source);
    let (mut x0, mut y0, mut x1, mut y1) = (src.x, src.y, src.x, src.y);
    for s in &net.sinks {
        let n = rrg.node(s.node);
        x0 = x0.min(n.x);
        y0 = y0.min(n.y);
        x1 = x1.max(n.x);
        y1 = y1.max(n.y);
    }
    // Clamp the margin to the fabric extent before converting to u16 so
    // `usize::MAX` (pruning disabled) cannot overflow. `max(max_x, max_y)`
    // always fits u16 and is enough for the box to span the whole fabric
    // from any terminal, so `covers_fabric` stays reachable and the
    // grow-until-covered loop always terminates.
    let m = margin.min(usize::from(max_x.max(max_y))) as u16;
    BBox {
        x0: x0.saturating_sub(m),
        y0: y0.saturating_sub(m),
        x1: x1.saturating_add(m).min(max_x),
        y1: y1.saturating_add(m).min(max_y),
    }
}

/// Grows a bounding-box margin (on unreachable sinks or persistent
/// congestion). Doubling-plus-one reaches full-fabric in O(log n) steps;
/// the result is capped at `extent` (the fabric's `max(max_x, max_y)`),
/// beyond which a wider margin cannot change any clamped box — growth on
/// an unroutable sink terminates at the cap instead of "growing" a
/// saturated `usize::MAX` forever.
pub(crate) fn grow_margin(margin: usize, extent: usize) -> usize {
    margin.saturating_mul(2).saturating_add(1).min(extent)
}

/// The fabric extent `max(max_x, max_y)` of an RRG — the margin value at
/// which every expansion bounding box covers the whole fabric.
pub(crate) fn fabric_extent(rrg: &RoutingGraph) -> usize {
    let (mut max_x, mut max_y) = (0u16, 0u16);
    for i in 0..rrg.node_count() {
        let node = rrg.node(RrNodeId::from_index(i as u32));
        max_x = max_x.max(node.x);
        max_y = max_y.max(node.y);
    }
    usize::from(max_x.max(max_y))
}

/// The half-perimeter (HPWL) of a net's terminal extent in grid units.
pub(crate) fn net_hpwl(rrg: &RoutingGraph, net: &RouteNet) -> usize {
    let src = rrg.node(net.source);
    let (mut x0, mut y0, mut x1, mut y1) = (src.x, src.y, src.x, src.y);
    for s in &net.sinks {
        let n = rrg.node(s.node);
        x0 = x0.min(n.x);
        y0 = y0.min(n.y);
        x1 = x1.max(n.x);
        y1 = y1.max(n.y);
    }
    usize::from(x1 - x0) + usize::from(y1 - y0)
}

/// The initial bounding-box margin of one net under `options`: the fixed
/// [`RouterOptions::bbox_margin`], widened to `hpwl / hpwl_margin_div`
/// for nets whose placement extent calls for more slack. The result is
/// clamped to `extent` (the fabric's `max(max_x, max_y)`) up front — a
/// corner-to-corner net otherwise seeds a margin far beyond the fabric
/// and [`grow_margin`]'s doubling burns growth steps on boxes `net_bbox`
/// re-clamps every call.
pub(crate) fn initial_margin(
    rrg: &RoutingGraph,
    net: &RouteNet,
    options: &RouterOptions,
    extent: usize,
) -> usize {
    if options.hpwl_margin_div == 0 {
        return options.bbox_margin.min(extent);
    }
    options
        .bbox_margin
        .max(net_hpwl(rrg, net) / options.hpwl_margin_div)
        .min(extent)
}

/// Per-net initial bounding-box margins seeded from placement geometry
/// (net HPWL) — what the flows pass to [`Router::route_with_margins`]
/// so the router starts from placement-aware boxes instead of a fixed
/// margin.
#[must_use]
pub fn seeded_margins(
    rrg: &RoutingGraph,
    nets: &[RouteNet],
    options: &RouterOptions,
) -> Vec<usize> {
    let extent = fabric_extent(rrg);
    nets.iter()
        .map(|net| initial_margin(rrg, net, options, extent))
        .collect()
}

/// The number of extra iterations nets get to negotiate congestion inside
/// their initial bounding boxes before the boxes start growing.
pub(crate) const BBOX_CONGESTION_GRACE: usize = 2;

/// One connection of a rectilinear Steiner decomposition: the sink to
/// route next and the tree-side attach coordinates that (together with
/// the sink) span its local search box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SteinerSeg {
    /// Index into [`RouteNet::sinks`].
    pub(crate) sink: u32,
    /// Attach-point x (a terminal already in the tree or a Hanan corner).
    pub(crate) ax: u16,
    /// Attach-point y.
    pub(crate) ay: u16,
}

/// Builds the rectilinear Steiner topology of a high-fanout net: a
/// Prim-style nearest-terminal sweep over the sink coordinates, with the
/// Hanan-grid corners of every accepted connection added as future attach
/// candidates. Returns one segment per sink in connection order; ties are
/// broken by (sink index, candidate index), so the topology is fully
/// deterministic. Shared by [`Router`] and [`crate::reference`] so both
/// route the exact same segments — the Steiner parity proptests rely on
/// that.
pub(crate) fn steiner_segments(rrg: &RoutingGraph, net: &RouteNet) -> Vec<SteinerSeg> {
    let src = rrg.node(net.source);
    // Attach candidates: terminals already connected plus Hanan corners.
    let mut cands: Vec<(u16, u16)> = vec![(src.x, src.y)];
    let mut remaining: Vec<u32> = (0..net.sinks.len() as u32).collect();
    let mut segs = Vec::with_capacity(net.sinks.len());
    while !remaining.is_empty() {
        // (distance, sink index, candidate index) — lexicographic min.
        let mut best: Option<(u32, u32, usize)> = None;
        let mut best_at = 0usize;
        for (ri, &si) in remaining.iter().enumerate() {
            let s = rrg.node(net.sinks[si as usize].node);
            for (ci, &(cx, cy)) in cands.iter().enumerate() {
                let d = u32::from(cx.abs_diff(s.x)) + u32::from(cy.abs_diff(s.y));
                let key = (d, si, ci);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                    best_at = ri;
                }
            }
        }
        let (_, si, ci) = best.expect("remaining is non-empty");
        let (cx, cy) = cands[ci];
        let s = rrg.node(net.sinks[si as usize].node);
        segs.push(SteinerSeg {
            sink: si,
            ax: cx,
            ay: cy,
        });
        // The sink itself and the two Hanan corners of the connection
        // become attach candidates for the remaining sinks.
        for p in [(s.x, s.y), (cx, s.y), (s.x, cy)] {
            if !cands.contains(&p) {
                cands.push(p);
            }
        }
        remaining.remove(best_at);
    }
    segs
}

/// The local expansion bounding box of one Steiner segment: the extent of
/// the sink and its attach point, expanded by `margin` and clamped to the
/// fabric — the Steiner-mode counterpart of [`net_bbox`].
pub(crate) fn steiner_bbox(
    rrg: &RoutingGraph,
    sink: RrNodeId,
    ax: u16,
    ay: u16,
    margin: usize,
    max_x: u16,
    max_y: u16,
) -> BBox {
    let s = rrg.node(sink);
    let m = margin.min(usize::from(max_x.max(max_y))) as u16;
    BBox {
        x0: s.x.min(ax).saturating_sub(m),
        y0: s.y.min(ay).saturating_sub(m),
        x1: s.x.max(ax).saturating_add(m).min(max_x),
        y1: s.y.max(ay).saturating_add(m).min(max_y),
    }
}

/// The coordinates of the routed-tree node nearest (Manhattan) to the
/// segment's topological attach point. The Steiner sweep picks attach
/// points on the Hanan grid of the *terminals*, but the tree that
/// actually got routed need not pass through that corner — anchoring the
/// segment box here guarantees the local search starts with at least one
/// seed instead of failing empty and regrowing. Ties keep the earliest
/// tree node (strict `<`), so the anchor is deterministic. Shared by
/// [`Router`] and [`crate::reference`].
pub(crate) fn nearest_tree_point(
    rrg: &RoutingGraph,
    tree: &[RouteTreeNode],
    ax: u16,
    ay: u16,
) -> (u16, u16) {
    let mut best = u32::MAX;
    let (mut bx, mut by) = (ax, ay);
    for t in tree {
        let n = rrg.node(t.node);
        let d = u32::from(n.x.abs_diff(ax)) + u32::from(n.y.abs_diff(ay));
        if d < best {
            best = d;
            bx = n.x;
            by = n.y;
        }
    }
    (bx, by)
}

/// The mode-aware PathFinder router.
///
/// Holds a persistent scratch arena (heap storage, stamped visit state,
/// path/order buffers) that is reused across nets, iterations and
/// [`Router::route`] calls — steady-state routing performs no per-net
/// heap allocations (see [`Router::scratch_footprint`]).
pub struct Router<'a> {
    rrg: &'a RoutingGraph,
    options: RouterOptions,
    space: ModeSpace,
    occ: Occupancy,
    /// Per-(switch, mode) usage counts for the sharing-aware cost.
    switch_use: Occupancy,
    /// Per-switch activation (the OR of modes with non-zero use),
    /// maintained incrementally so the per-edge sharing cost is O(1)
    /// instead of a scan over the mode counts.
    switch_act: Vec<ModeSet>,
    history: Vec<f32>,
    pres_fac: f64,
    /// Fabric extent for bounding-box clamping.
    max_x: u16,
    max_y: u16,
    /// For every `IPIN` node, the index of the `SINK` it feeds
    /// (`u32::MAX` elsewhere) — precomputed so the search's IPIN pruning
    /// is one array read instead of an edge-list lookup.
    ipin_sink: Vec<u32>,
    // ---- scratch arena (generation-stamped, reused across nets) ----
    /// Per-search best cost-to-come, valid when `gen` matches.
    dist: Vec<f64>,
    /// Per-search predecessor (node, switch), valid when `gen` matches.
    prev: Vec<(u32, Option<SwitchId>)>,
    gen: Vec<u32>,
    generation: u32,
    /// Reused A* heap storage.
    heap: BinaryHeap<HeapEntry>,
    /// Reused back-walk path buffer (node, switch-from-previous).
    path: Vec<(u32, Option<SwitchId>)>,
    /// Reused farthest-first sink-order buffer.
    order: Vec<u32>,
    /// RRG node → tree index of the net being routed, stamped by
    /// `tree_gen` — the allocation-free replacement of the per-net
    /// `HashMap`.
    tree_pos: Vec<u32>,
    tree_gen: Vec<u32>,
    tree_generation: u32,
    /// Nodes whose occupancy changed since the last overuse evaluation,
    /// deduplicated by `touch_gen` stamps — overuse/history accounting
    /// walks this list instead of the whole graph.
    touched: Vec<u32>,
    touch_gen: Vec<u32>,
    touch_generation: u32,
    /// Per-net bounding-box margins of the current `route()` call.
    net_margin: Vec<usize>,
    /// Per-net Steiner topology of the current `route()` call, computed
    /// lazily on first use (empty = not yet computed). The topology
    /// depends only on the static terminal geometry, so rip-up/reroute
    /// iterations reuse it instead of re-running the Prim sweep.
    steiner_cache: Vec<Vec<SteinerSeg>>,
    /// Per-net base margin of the Steiner segment boxes. Starts at
    /// [`RouterOptions::bbox_margin`] — NOT the HPWL-seeded net margin,
    /// which scales with the whole net's extent and would make every
    /// "local" segment box cover most of the fabric on exactly the
    /// broadcast nets the decomposition targets — and grows only under
    /// congestion, in step with `net_margin`.
    steiner_margin: Vec<usize>,
    // ---- timing-driven cost shaping (empty unless requested) ----
    /// Flattened per-sink criticalities of the current
    /// [`Router::route_with_criticality`] call (clamped to
    /// `0..=MAX_ROUTE_CRIT`); empty for plain congestion-driven routing.
    crit_dat: Vec<f64>,
    /// Per-net start offsets into `crit_dat` (`nets.len() + 1` entries).
    crit_idx: Vec<u32>,
    /// Criticality of the sink currently being searched (0.0 keeps the
    /// cost expression bit-identical to the congestion-only router).
    sink_crit: f64,
    // ---- incremental rip-up scratch (per congested net, reused) ----
    /// Tree nodes with an overused node on their root path (self
    /// included).
    blocked: Vec<bool>,
    /// Tree nodes on the root path of a surviving sink.
    keep: Vec<bool>,
    /// Recomputed activation of kept nodes: OR of surviving sinks below.
    keep_act: Vec<ModeSet>,
    /// Old tree index → pruned tree index for kept nodes.
    remap: Vec<u32>,
    /// Sink indices torn down by the prune (to be re-routed).
    lost: Vec<u32>,
    /// Per-sink lost flag of the net being pruned.
    sink_lost: Vec<bool>,
    /// Pruned-tree build buffer, swapped with the net's tree.
    tree_buf: Vec<RouteTreeNode>,
}

impl<'a> Router<'a> {
    /// Creates a router over an RRG.
    ///
    /// # Panics
    ///
    /// Panics if `options.mode_count` is 0.
    #[must_use]
    pub fn new(rrg: &'a RoutingGraph, options: RouterOptions) -> Self {
        assert!(options.mode_count >= 1, "mode_count must be positive");
        let n = rrg.node_count();
        let (mut max_x, mut max_y) = (0u16, 0u16);
        let mut ipin_sink = vec![u32::MAX; n];
        for (i, sink) in ipin_sink.iter_mut().enumerate() {
            let id = RrNodeId::from_index(i as u32);
            let node = rrg.node(id);
            max_x = max_x.max(node.x);
            max_y = max_y.max(node.y);
            if node.kind == RrKind::Ipin {
                if let Some(edge) = rrg.edges(id).first() {
                    *sink = edge.to.index() as u32;
                }
            }
        }
        Self {
            rrg,
            space: ModeSpace::new(options.mode_count),
            occ: Occupancy::new(n, options.mode_count),
            switch_use: Occupancy::new(rrg.switch_count(), options.mode_count),
            switch_act: vec![ModeSet::EMPTY; rrg.switch_count()],
            history: vec![0.0; n],
            pres_fac: options.pres_fac_first,
            max_x,
            max_y,
            ipin_sink,
            dist: vec![0.0; n],
            prev: vec![(0, None); n],
            gen: vec![0; n],
            generation: 0,
            heap: BinaryHeap::new(),
            path: Vec::new(),
            order: Vec::new(),
            tree_pos: vec![0; n],
            tree_gen: vec![0; n],
            tree_generation: 0,
            touched: Vec::new(),
            touch_gen: vec![0; n],
            touch_generation: 1,
            net_margin: Vec::new(),
            steiner_cache: Vec::new(),
            steiner_margin: Vec::new(),
            crit_dat: Vec::new(),
            crit_idx: Vec::new(),
            sink_crit: 0.0,
            blocked: Vec::new(),
            keep: Vec::new(),
            keep_act: Vec::new(),
            remap: Vec::new(),
            lost: Vec::new(),
            sink_lost: Vec::new(),
            tree_buf: Vec::new(),
            options,
        }
    }

    /// Total capacity (in elements) of the reusable scratch buffers whose
    /// size depends on routing activity. Steady-state re-routing of the
    /// same nets must leave this unchanged — the zero-allocation
    /// regression tests assert exactly that.
    #[must_use]
    pub fn scratch_footprint(&self) -> usize {
        self.heap.capacity()
            + self.path.capacity()
            + self.order.capacity()
            + self.touched.capacity()
            + self.net_margin.capacity()
            + self.blocked.capacity()
            + self.keep.capacity()
            + self.keep_act.capacity()
            + self.remap.capacity()
            + self.lost.capacity()
            + self.sink_lost.capacity()
            + self.tree_buf.capacity()
    }

    fn base_cost(&self, kind: RrKind) -> f64 {
        match kind {
            RrKind::ChanX | RrKind::ChanY => 1.0,
            RrKind::Ipin => 0.95,
            RrKind::Sink => 0.0,
            RrKind::Opin | RrKind::Source => 1.0,
        }
    }

    /// Unit-delay model of a node traversal: one delay unit per wire
    /// segment, zero for pins — the same model `mm-sta` analyzes routed
    /// paths with (`NetRoute::wires_to_sink`).
    fn wire_delay(kind: RrKind) -> f64 {
        match kind {
            RrKind::ChanX | RrKind::ChanY => 1.0,
            RrKind::Ipin | RrKind::Sink | RrKind::Opin | RrKind::Source => 0.0,
        }
    }

    /// Criticality of one sink under the current routing call (0.0 when
    /// routing is purely congestion-driven).
    #[inline]
    fn sink_criticality(&self, net_index: usize, sink_index: usize) -> f64 {
        if self.crit_idx.is_empty() {
            return 0.0;
        }
        self.crit_dat[self.crit_idx[net_index] as usize + sink_index]
    }

    /// Node cost given the node's (already fetched) RRG record.
    fn node_cost(&self, node: u32, rr: &mm_arch::RrNode, act: ModeSet) -> f64 {
        let occ_eff = f64::from(self.occ.max_in(node as usize, act));
        let over = (occ_eff + 1.0 - f64::from(rr.capacity)).max(0.0);
        let pres = 1.0 + self.pres_fac * over;
        self.base_cost(rr.kind) * (1.0 + f64::from(self.history[node as usize])) * pres
    }

    /// The modes in which `switch` currently carries signal — O(1) from
    /// the incrementally maintained activation table.
    #[inline]
    fn switch_activation(&self, switch: SwitchId) -> ModeSet {
        self.switch_act[switch.index()]
    }

    /// Claims `switch` in the modes of `act`, keeping the activation
    /// table in sync with the counts.
    fn switch_claim(&mut self, switch: SwitchId, act: ModeSet) {
        self.switch_use.add(switch.index(), act);
        let mut cur = self.switch_act[switch.index()];
        for m in act.iter() {
            cur.insert(m);
        }
        self.switch_act[switch.index()] = cur;
    }

    /// Releases `switch` in the modes of `act`; modes whose count drops
    /// to zero leave the activation set.
    fn switch_release(&mut self, switch: SwitchId, act: ModeSet) {
        self.switch_use.remove(switch.index(), act);
        let base = switch.index() * self.switch_use.modes;
        let mut cur = self.switch_act[switch.index()];
        for m in act.iter() {
            if self.switch_use.counts[base + m] == 0 {
                cur.remove(m);
            }
        }
        self.switch_act[switch.index()] = cur;
    }

    /// Reconfiguration-aware edge factor: cheaper when the traversal makes
    /// the switch bit *less* parameterized (sharing across disjoint
    /// modes), dearer when it freshly parameterizes it.
    fn share_factor(&self, switch: Option<SwitchId>, act: ModeSet) -> f64 {
        if self.options.mode_count == 1
            || (self.options.share_discount == 0.0 && self.options.param_penalty == 0.0)
        {
            return 1.0;
        }
        let Some(s) = switch else { return 1.0 };
        let current = self.switch_activation(s);
        let after = current | act;
        let before_param = current.is_parameterized(self.space);
        let after_param = after.is_parameterized(self.space);
        if after_param && !before_param && current.is_never() {
            1.0 + self.options.param_penalty
        } else if before_param && !after_param {
            1.0 - self.options.share_discount
        } else if before_param && act.is_subset(current) {
            // Re-using an already-parameterized switch in covered modes
            // costs nothing extra — mildly encourage convergence.
            1.0 - self.options.share_discount * 0.5
        } else {
            1.0
        }
    }

    /// A* distance estimate to the (pre-fetched) target coordinates.
    #[inline]
    fn heuristic_to(&self, rr: &mm_arch::RrNode, tx: i32, ty: i32) -> f64 {
        let dx = (i32::from(rr.x) - tx).unsigned_abs();
        let dy = (i32::from(rr.y) - ty).unsigned_abs();
        self.options.astar_fac * f64::from(dx + dy)
    }

    /// The fabric extent `max(max_x, max_y)` — the margin cap of
    /// [`grow_margin`] and [`initial_margin`].
    #[inline]
    fn extent(&self) -> usize {
        usize::from(self.max_x.max(self.max_y))
    }

    /// Marks a node's occupancy as changed since the last overuse
    /// evaluation (deduplicated by stamp).
    #[inline]
    fn touch(&mut self, node: usize) {
        if self.touch_gen[node] != self.touch_generation {
            self.touch_gen[node] = self.touch_generation;
            self.touched.push(node as u32);
        }
    }

    /// Routes all nets; returns the final routing (check
    /// [`Routing::success`]).
    ///
    /// Initial bounding-box margins follow [`RouterOptions`] (fixed, or
    /// HPWL-seeded when [`RouterOptions::hpwl_margin_div`] is non-zero).
    /// Congestion state (occupancy, history, present-congestion factor)
    /// is reset on entry, so repeated calls on one router are idempotent
    /// and reuse the scratch arena instead of reallocating it.
    pub fn route(&mut self, nets: &[RouteNet]) -> Routing {
        self.crit_dat.clear();
        self.crit_idx.clear();
        self.net_margin.clear();
        let extent = self.extent();
        for net in nets {
            self.net_margin
                .push(initial_margin(self.rrg, net, &self.options, extent));
        }
        self.route_prepared(nets)
    }

    /// [`Router::route`] with per-connection timing criticalities
    /// (`crit[net][sink]` in `0..=1`, e.g. from `mm-sta`): each sink's
    /// search blends the congestion cost with the wire delay,
    /// `(1 - c) · congestion + c · delay`, so near-critical connections
    /// prefer short paths while slack-rich ones keep yielding wires to
    /// congestion negotiation. Criticalities are clamped to
    /// `0..=MAX_ROUTE_CRIT` so congestion pressure never fully vanishes;
    /// a sink at criticality 0.0 is routed with the exact
    /// (bit-identical) congestion-only cost.
    ///
    /// # Panics
    ///
    /// Panics if the criticality table's shape does not match `nets` or
    /// contains a non-finite value.
    pub fn route_with_criticality(&mut self, nets: &[RouteNet], crit: &[Vec<f64>]) -> Routing {
        assert_eq!(crit.len(), nets.len(), "one criticality row per net");
        self.crit_dat.clear();
        self.crit_idx.clear();
        self.crit_idx.push(0);
        for (net, row) in nets.iter().zip(crit) {
            assert_eq!(
                row.len(),
                net.sinks.len(),
                "one criticality per sink of net '{}'",
                net.name
            );
            for &c in row {
                assert!(c.is_finite(), "criticality must be finite");
                self.crit_dat.push(c.clamp(0.0, MAX_ROUTE_CRIT));
            }
            self.crit_idx.push(self.crit_dat.len() as u32);
        }
        self.net_margin.clear();
        let extent = self.extent();
        for net in nets {
            self.net_margin
                .push(initial_margin(self.rrg, net, &self.options, extent));
        }
        self.route_prepared(nets)
    }

    /// Routes all nets with explicit per-net initial bounding-box margins
    /// — the flows pass placement-geometry-derived margins here (see
    /// [`seeded_margins`]).
    ///
    /// # Panics
    ///
    /// Panics if `margins.len() != nets.len()`.
    pub fn route_with_margins(&mut self, nets: &[RouteNet], margins: &[usize]) -> Routing {
        assert_eq!(margins.len(), nets.len(), "one margin per net");
        self.crit_dat.clear();
        self.crit_idx.clear();
        self.net_margin.clear();
        self.net_margin.extend_from_slice(margins);
        self.route_prepared(nets)
    }

    /// The rip-up-and-reroute loop over `nets`, with `self.net_margin`
    /// already holding the initial per-net margins.
    fn route_prepared(&mut self, nets: &[RouteNet]) -> Routing {
        self.occ.counts.fill(0);
        self.switch_use.counts.fill(0);
        self.switch_act.fill(ModeSet::EMPTY);
        self.history.fill(0.0);
        self.pres_fac = self.options.pres_fac_first;
        self.steiner_cache.clear();
        self.steiner_cache.resize(nets.len(), Vec::new());
        self.steiner_margin.clear();
        self.steiner_margin
            .resize(nets.len(), self.options.bbox_margin.min(self.extent()));
        let mut routes: Vec<NetRoute> = vec![NetRoute::default(); nets.len()];
        let mut iterations = 0;
        let mut success = false;
        let mut overused_nodes = 0;
        let mut unrouted = 0usize;
        let reroute_all = self.options.reroute_all_iters.max(1);

        for iter in 0..self.options.max_iterations {
            iterations = iter + 1;
            let mut rerouted_any = false;
            for (i, net) in nets.iter().enumerate() {
                let warmup = iter < reroute_all;
                let congested = !warmup && self.route_is_congested(&routes[i]);
                if !warmup && !congested {
                    continue;
                }
                // A net that stays congested after a short grace period
                // gets a wider box: detours the negotiation needs may lie
                // outside the terminal extent.
                if congested && iter >= reroute_all + BBOX_CONGESTION_GRACE {
                    self.net_margin[i] = grow_margin(self.net_margin[i], self.extent());
                    self.steiner_margin[i] = grow_margin(self.steiner_margin[i], self.extent());
                }
                rerouted_any = true;
                let mut route = std::mem::take(&mut routes[i]);
                if warmup || !self.options.incremental {
                    self.rip_up(&route);
                    self.route_net(net, i, &mut route);
                } else {
                    self.reroute_incremental(net, i, &mut route);
                }
                routes[i] = route;
            }

            // Any sink that has no path at all makes the fabric
            // unroutable regardless of congestion negotiation.
            unrouted = nets
                .iter()
                .zip(&routes)
                .map(|(net, route)| {
                    net.sinks
                        .iter()
                        .zip(&route.sink_pos)
                        .filter(|(sink, &pos)| {
                            route
                                .tree
                                .get(pos as usize)
                                .is_none_or(|t| t.node != sink.node)
                        })
                        .count()
                })
                .sum();
            if unrouted > 0 {
                break; // hard unreachability: iterating cannot help
            }

            // Evaluate overuse and update history — only nodes whose
            // occupancy changed since the last evaluation can be (or have
            // stopped being) overused: congested nets are always ripped
            // up and re-claimed, which touches every node involved.
            overused_nodes = 0;
            let touched = std::mem::take(&mut self.touched);
            for &node in &touched {
                let node = node as usize;
                let cap = self.rrg.node(RrNodeId::from_index(node as u32)).capacity;
                let max = self.occ.max_all(node);
                if max > cap {
                    overused_nodes += 1;
                    self.history[node] += (self.options.history_cost * f64::from(max - cap)) as f32;
                }
            }
            self.touched = touched;
            self.touched.clear();
            self.touch_generation = self.touch_generation.wrapping_add(1);
            if overused_nodes == 0 {
                success = true;
                break;
            }
            if !rerouted_any {
                // Nothing changed but overuse persists — cannot improve.
                break;
            }
            self.pres_fac *= self.options.pres_fac_mult;
        }

        Routing {
            nets: routes,
            iterations,
            success: success && unrouted == 0,
            overused_nodes,
            unrouted_sinks: unrouted,
        }
    }

    fn route_is_congested(&self, route: &NetRoute) -> bool {
        route.tree.iter().any(|t| {
            let cap = self.rrg.node(t.node).capacity;
            self.occ.max_all(t.node.index()) > cap
        })
    }

    fn rip_up(&mut self, route: &NetRoute) {
        for i in 0..route.tree.len() {
            let t = route.tree[i];
            self.occ.remove(t.node.index(), t.activation);
            self.touch(t.node.index());
            if let Some(s) = t.switch {
                self.switch_release(s, t.activation);
            }
        }
    }

    /// Looks up an RRG node in the current net's route tree.
    #[inline]
    fn tree_index(&self, node: u32) -> Option<u32> {
        (self.tree_gen[node as usize] == self.tree_generation).then(|| self.tree_pos[node as usize])
    }

    #[inline]
    fn set_tree_index(&mut self, node: u32, index: u32) {
        self.tree_pos[node as usize] = index;
        self.tree_gen[node as usize] = self.tree_generation;
    }

    /// Routes one net from scratch into `route` (whose buffers are
    /// reused), claiming occupancy for its tree.
    fn route_net(&mut self, net: &RouteNet, net_index: usize, route: &mut NetRoute) {
        route.tree.clear();
        route.sink_pos.clear();
        route.sink_pos.resize(net.sinks.len(), 0);
        self.tree_generation = self.tree_generation.wrapping_add(1);

        let net_act: ModeSet = net
            .sinks
            .iter()
            .fold(ModeSet::EMPTY, |a, s| a | s.activation);
        route.tree.push(RouteTreeNode {
            node: net.source,
            parent: None,
            switch: None,
            activation: net_act,
        });
        self.set_tree_index(net.source.index() as u32, 0);
        self.occ.add(net.source.index(), net_act);
        self.touch(net.source.index());

        if self.options.steiner_fanout > 0 && net.sinks.len() >= self.options.steiner_fanout {
            // High-fanout net: Steiner decomposition into short segments
            // with local search boxes.
            self.route_steiner(net, net_index, route);
            return;
        }

        // Route all sinks farthest-first (better tree quality).
        self.order.clear();
        self.order.extend(0..net.sinks.len() as u32);
        self.sort_sink_order(net);
        self.route_sinks(net, net_index, route);
    }

    /// Routes one high-fanout net along its rectilinear Steiner topology:
    /// every segment is an A* search seeded from the whole current tree
    /// but confined to a small box around (sink, attach point), grown on
    /// failure like the sink-by-sink path. Stitching is the ordinary tree
    /// claim, so activation ORs and `sink_pos` mapping are exactly those
    /// of the sink-by-sink router.
    fn route_steiner(&mut self, net: &RouteNet, net_index: usize, route: &mut NetRoute) {
        let rrg = self.rrg;
        let extent = self.extent();
        if self.steiner_cache[net_index].is_empty() {
            self.steiner_cache[net_index] = steiner_segments(rrg, net);
        }
        let segs = std::mem::take(&mut self.steiner_cache[net_index]);
        for seg in &segs {
            let si = seg.sink as usize;
            let sink = net.sinks[si];
            self.sink_crit = self.sink_criticality(net_index, si);
            if let Some(pos) = self.tree_index(sink.node.index() as u32) {
                self.extend_activation(&mut route.tree, pos, sink.activation);
                route.sink_pos[si] = pos;
                continue;
            }
            // Anchor the local box at the tree node nearest the
            // topological attach point: the routed tree need not pass
            // through the Hanan corner itself, and a box with no tree
            // seed inside can only fail-and-regrow. Ties keep the
            // earliest tree node (strict `<`), so the anchor is
            // deterministic.
            let (ax, ay) = nearest_tree_point(rrg, &route.tree, seg.ax, seg.ay);
            // Local growth only: a hard segment widens its own box
            // without widening every later segment of the net.
            let mut margin = self.steiner_margin[net_index];
            let found = loop {
                let bbox = steiner_bbox(rrg, sink.node, ax, ay, margin, self.max_x, self.max_y);
                if self.search(&route.tree, sink.node, sink.activation, bbox) {
                    break true;
                }
                if bbox.covers_fabric(self.max_x, self.max_y) {
                    break false;
                }
                margin = grow_margin(margin, extent);
            };
            if found {
                self.claim_path(route, si, sink.activation);
            } else {
                route.sink_pos[si] = 0;
            }
        }
        self.steiner_cache[net_index] = segs;
    }

    /// Sorts `self.order` (sink indices of `net`) farthest-first from the
    /// source. The index tie break reproduces a stable sort without its
    /// temporary buffer.
    fn sort_sink_order(&mut self, net: &RouteNet) {
        let rrg = self.rrg;
        let src = rrg.node(net.source);
        self.order.sort_unstable_by_key(|&i| {
            let s = rrg.node(net.sinks[i as usize].node);
            let d = (i32::from(s.x) - i32::from(src.x)).abs()
                + (i32::from(s.y) - i32::from(src.y)).abs();
            (std::cmp::Reverse(d), i)
        });
    }

    /// Incrementally re-routes a congested net: subtrees that pass
    /// through an overused node are torn down (and only those), the
    /// surviving tree keeps its claims with activations renarrowed to the
    /// surviving sinks, and the lost sinks are re-routed from the kept
    /// tree.
    fn reroute_incremental(&mut self, net: &RouteNet, net_index: usize, route: &mut NetRoute) {
        // Overuse is judged with this net's occupancy still claimed —
        // exactly the condition `route_is_congested` saw.
        let tree_len = route.tree.len();
        self.blocked.clear();
        self.blocked.resize(tree_len, false);
        for (idx, t) in route.tree.iter().enumerate() {
            let over = self.occ.max_all(t.node.index()) > self.rrg.node(t.node).capacity;
            let parent_blocked = t.parent.is_some_and(|p| self.blocked[p as usize]);
            self.blocked[idx] = over || parent_blocked;
        }

        // Classify sinks and mark the kept paths with their recomputed
        // activations (OR of the surviving sinks through each node).
        self.keep.clear();
        self.keep.resize(tree_len, false);
        self.keep_act.clear();
        self.keep_act.resize(tree_len, ModeSet::EMPTY);
        self.lost.clear();
        self.sink_lost.clear();
        self.sink_lost.resize(net.sinks.len(), false);
        self.keep[0] = true;
        let root_blocked = self.blocked[0];
        for (si, sink) in net.sinks.iter().enumerate() {
            let pos = route.sink_pos[si];
            if root_blocked || self.blocked[pos as usize] {
                self.lost.push(si as u32);
                self.sink_lost[si] = true;
                continue;
            }
            let mut cur = Some(pos);
            while let Some(p) = cur {
                self.keep[p as usize] = true;
                self.keep_act[p as usize] |= sink.activation;
                cur = route.tree[p as usize].parent;
            }
        }
        if self.lost.is_empty() {
            // Every tree node lies on some sink's path, so a congested
            // net always loses a sink; defensive fallback to a full
            // reroute if that invariant ever breaks.
            self.rip_up(route);
            self.route_net(net, net_index, route);
            return;
        }

        // Release the whole old tree, then rebuild and re-claim only the
        // kept part (same node order, remapped parents, renarrowed
        // activations; the root keeps the full net activation, exactly
        // as a from-scratch route starts).
        self.rip_up(route);
        let net_act: ModeSet = net
            .sinks
            .iter()
            .fold(ModeSet::EMPTY, |a, s| a | s.activation);
        self.tree_generation = self.tree_generation.wrapping_add(1);
        self.remap.clear();
        self.remap.resize(tree_len, 0);
        let mut tree_buf = std::mem::take(&mut self.tree_buf);
        tree_buf.clear();
        for idx in 0..tree_len {
            if !self.keep[idx] {
                continue;
            }
            let t = route.tree[idx];
            let new_index = tree_buf.len() as u32;
            self.remap[idx] = new_index;
            let activation = if idx == 0 {
                net_act
            } else {
                self.keep_act[idx]
            };
            tree_buf.push(RouteTreeNode {
                node: t.node,
                // The parent of a kept node is on the same surviving
                // path, hence kept and already remapped.
                parent: t.parent.map(|p| self.remap[p as usize]),
                switch: t.switch,
                activation,
            });
            self.occ.add(t.node.index(), activation);
            self.touch(t.node.index());
            if let Some(s) = t.switch {
                self.switch_claim(s, activation);
            }
            self.set_tree_index(t.node.index() as u32, new_index);
        }
        std::mem::swap(&mut route.tree, &mut tree_buf);
        self.tree_buf = tree_buf;
        for si in 0..net.sinks.len() {
            if !self.sink_lost[si] {
                route.sink_pos[si] = self.remap[route.sink_pos[si] as usize];
            }
        }

        // Re-route only the lost sinks, farthest-first like a full route.
        self.order.clear();
        self.order.extend_from_slice(&self.lost);
        self.sort_sink_order(net);
        self.route_sinks(net, net_index, route);
    }

    /// Routes the sinks listed in `self.order` into the net's existing
    /// tree, growing the net's bounding box as needed.
    fn route_sinks(&mut self, net: &RouteNet, net_index: usize, route: &mut NetRoute) {
        let rrg = self.rrg;
        let order = std::mem::take(&mut self.order);
        for &si in &order {
            let si = si as usize;
            let sink = net.sinks[si];
            self.sink_crit = self.sink_criticality(net_index, si);
            if let Some(pos) = self.tree_index(sink.node.index() as u32) {
                // Already reached (e.g. shared sink); just extend activation.
                self.extend_activation(&mut route.tree, pos, sink.activation);
                route.sink_pos[si] = pos;
                continue;
            }
            // Search inside the net's bounding box, growing it until the
            // sink is reached or the box covers the whole fabric.
            let found = loop {
                let bbox = net_bbox(rrg, net, self.net_margin[net_index], self.max_x, self.max_y);
                if self.search(&route.tree, sink.node, sink.activation, bbox) {
                    break true;
                }
                if bbox.covers_fabric(self.max_x, self.max_y) {
                    break false;
                }
                self.net_margin[net_index] = grow_margin(self.net_margin[net_index], self.extent());
            };
            if found {
                self.claim_path(route, si, sink.activation);
            } else {
                // Unreachable sink: leave it unrouted; the caller sees
                // failure through the congestion/overuse check (the
                // net is marked congested by pointing the sink at the
                // source, which keeps indices valid).
                route.sink_pos[si] = 0;
            }
        }
        self.order = order;
    }

    /// Claims the search result in `self.path` (running from a tree node
    /// to sink `si`'s node) into the net's tree: occupancy, switch and
    /// tree-index bookkeeping plus the join's activation widening.
    fn claim_path(&mut self, route: &mut NetRoute, si: usize, act: ModeSet) {
        // Take the path so tree mutation can borrow `self`.
        let path = std::mem::take(&mut self.path);
        let join = self
            .tree_index(path[0].0)
            .expect("search starts at a tree node");
        self.extend_activation(&mut route.tree, join, act);
        let mut parent = join;
        for &(node, switch) in &path[1..] {
            let idx = route.tree.len() as u32;
            route.tree.push(RouteTreeNode {
                node: RrNodeId::from_index(node),
                parent: Some(parent),
                switch,
                activation: act,
            });
            self.occ.add(node as usize, act);
            self.touch(node as usize);
            if let Some(s) = switch {
                self.switch_claim(s, act);
            }
            self.set_tree_index(node, idx);
            parent = idx;
        }
        route.sink_pos[si] = parent;
        self.path = path;
    }

    /// Widens the activation of `pos` and all its ancestors by `act`.
    fn extend_activation(&mut self, tree: &mut [RouteTreeNode], pos: u32, act: ModeSet) {
        let mut cur = Some(pos);
        while let Some(p) = cur {
            let t = &mut tree[p as usize];
            let delta = act & t.activation.complement(self.space);
            if delta.is_never() {
                break; // invariant: ancestors already carry a superset
            }
            t.activation |= delta;
            let node = t.node.index();
            let switch = t.switch;
            cur = t.parent;
            self.occ.add(node, delta);
            self.touch(node);
            if let Some(s) = switch {
                self.switch_claim(s, delta);
            }
        }
    }

    /// A*-guided Dijkstra from the current tree to `target`, confined to
    /// `bbox`. On success, fills `self.path` with the path as
    /// (node, switch-from-previous) starting at a tree node.
    fn search(
        &mut self,
        tree: &[RouteTreeNode],
        target: RrNodeId,
        act: ModeSet,
        bbox: BBox,
    ) -> bool {
        self.generation = self.generation.wrapping_add(1);
        let generation = self.generation;
        let target_idx = target.index() as u32;
        let rrg = self.rrg;
        let target_rr = rrg.node(target);
        let (tx, ty) = (i32::from(target_rr.x), i32::from(target_rr.y));
        self.heap.clear();

        for t in tree {
            let node = t.node.index() as u32;
            let rr = rrg.node(t.node);
            if !bbox.contains(rr.x, rr.y) {
                continue; // a congestion detour left the box; not a seed
            }
            self.dist[node as usize] = 0.0;
            self.prev[node as usize] = (node, None);
            self.gen[node as usize] = generation;
            let f = self.heuristic_to(rr, tx, ty);
            self.heap.push(HeapEntry { f, g: 0.0, node });
        }

        let mut found = false;
        while let Some(entry) = self.heap.pop() {
            let u = entry.node;
            if entry.g > self.dist[u as usize] + 1e-12 {
                continue; // stale
            }
            if u == target_idx {
                found = true;
                break;
            }
            for e in rrg.edges(RrNodeId::from_index(u)) {
                let v = e.to.index() as u32;
                let to = rrg.node(e.to);
                // Never expand through foreign sinks or sources; prune
                // IPINs that do not lead to the target (one read from the
                // precomputed table), and anything outside the net's
                // bounding box.
                match to.kind {
                    RrKind::Sink if v != target_idx => continue,
                    RrKind::Source => continue,
                    RrKind::Ipin if self.ipin_sink[v as usize] != target_idx => continue,
                    _ => {}
                }
                if !bbox.contains(to.x, to.y) {
                    continue;
                }
                // Timing-driven blend: a critical sink trades congestion
                // cost for wire delay. The `c == 0.0` branch keeps the
                // default path bit-identical to the congestion-only
                // router (the parity tests rely on that).
                let c = self.sink_crit;
                let g = if c > 0.0 {
                    entry.g
                        + (1.0 - c) * self.node_cost(v, to, act) * self.share_factor(e.switch, act)
                        + c * Self::wire_delay(to.kind)
                } else {
                    entry.g + self.node_cost(v, to, act) * self.share_factor(e.switch, act)
                };
                if self.gen[v as usize] != generation || g + 1e-12 < self.dist[v as usize] {
                    self.gen[v as usize] = generation;
                    self.dist[v as usize] = g;
                    self.prev[v as usize] = (u, e.switch);
                    let f = g + self.heuristic_to(to, tx, ty);
                    self.heap.push(HeapEntry { f, g, node: v });
                }
            }
        }
        if !found {
            return false;
        }

        // Walk back to a tree node (dist 0 and part of the seed set).
        self.path.clear();
        let mut cur = target_idx;
        loop {
            let (p, sw) = self.prev[cur as usize];
            self.path.push((cur, sw));
            if p == cur {
                break; // reached a seed (tree) node
            }
            cur = p;
        }
        self.path.reverse();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_arch::Architecture;

    fn arch_rrg(n: usize, w: usize) -> RoutingGraph {
        RoutingGraph::build(&Architecture::new(4, n, w))
    }

    fn verify_tree(rrg: &RoutingGraph, net: &RouteNet, route: &NetRoute, space: ModeSpace) {
        assert!(!route.tree.is_empty());
        assert_eq!(route.tree[0].node, net.source);
        assert_eq!(route.tree[0].parent, None);
        for (i, t) in route.tree.iter().enumerate().skip(1) {
            let p = t.parent.expect("non-root has parent") as usize;
            assert!(p < i, "parents precede children");
            let edge_ok = rrg
                .edges(route.tree[p].node)
                .iter()
                .any(|e| e.to == t.node && e.switch == t.switch);
            assert!(edge_ok, "tree edge must exist in the RRG");
            // Activation invariant: child ⊆ parent.
            assert!(
                t.activation.is_subset(route.tree[p].activation),
                "activation must not grow downwards"
            );
            let _ = space;
        }
        for (si, sink) in net.sinks.iter().enumerate() {
            let pos = route.sink_pos[si] as usize;
            assert_eq!(route.tree[pos].node, sink.node, "sink {si} reached");
            assert!(sink.activation.is_subset(route.tree[pos].activation));
        }
    }

    fn site(x: u16, y: u16, sub: u8) -> mm_arch::Site {
        mm_arch::Site::new(x, y, sub)
    }

    #[test]
    fn single_net_routes() {
        let rrg = arch_rrg(4, 4);
        let all = ModeSet::of(&[0]);
        let net = RouteNet {
            name: "n".into(),
            source: rrg.logic_source(site(1, 1, 0)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(site(4, 4, 0)),
                activation: all,
            }],
        };
        let mut router = Router::new(&rrg, RouterOptions::default());
        let routing = router.route(std::slice::from_ref(&net));
        assert!(routing.success);
        verify_tree(&rrg, &net, &routing.nets[0], ModeSpace::new(1));
        // Manhattan distance 6 → at least 6 wire segments.
        assert!(routing.nets[0].wire_count(&rrg) >= 6);
    }

    #[test]
    fn multi_sink_tree_shares_trunk() {
        let rrg = arch_rrg(5, 4);
        let all = ModeSet::of(&[0]);
        let net = RouteNet {
            name: "n".into(),
            source: rrg.logic_source(site(1, 3, 0)),
            sinks: vec![
                RouteSink {
                    node: rrg.logic_sink(site(5, 3, 0)),
                    activation: all,
                },
                RouteSink {
                    node: rrg.logic_sink(site(5, 2, 0)),
                    activation: all,
                },
            ],
        };
        let mut router = Router::new(&rrg, RouterOptions::default());
        let routing = router.route(std::slice::from_ref(&net));
        assert!(routing.success);
        verify_tree(&rrg, &net, &routing.nets[0], ModeSpace::new(1));
        // A shared trunk should use fewer wires than two independent
        // routes (4 + 5 = 9 minimum independent).
        assert!(routing.nets[0].wire_count(&rrg) < 11);
    }

    #[test]
    fn io_to_logic_routes() {
        let rrg = arch_rrg(3, 4);
        let all = ModeSet::of(&[0]);
        let net = RouteNet {
            name: "pad".into(),
            source: rrg.io_source(site(0, 2, 1)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(site(2, 2, 0)),
                activation: all,
            }],
        };
        let mut router = Router::new(&rrg, RouterOptions::default());
        let routing = router.route(std::slice::from_ref(&net));
        assert!(routing.success);
    }

    #[test]
    fn congestion_resolved_by_negotiation() {
        // Many nets crossing the same column on a narrow fabric; the
        // router must spread them over tracks.
        let rrg = arch_rrg(4, 3);
        let all = ModeSet::of(&[0]);
        let mut nets = Vec::new();
        for y in 1..=4u16 {
            nets.push(RouteNet {
                name: format!("h{y}"),
                source: rrg.logic_source(site(1, y, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(site(4, y, 0)),
                    activation: all,
                }],
            });
        }
        let mut router = Router::new(&rrg, RouterOptions::default());
        let routing = router.route(&nets);
        assert!(routing.success, "4 rows on W=3 must route");
        for (net, route) in nets.iter().zip(&routing.nets) {
            verify_tree(&rrg, net, route, ModeSpace::new(1));
        }
    }

    #[test]
    fn disjoint_modes_share_wires() {
        // Two mode-exclusive nets with identical endpoints on a fabric of
        // width 1: only possible if they share wires across modes.
        let rrg = arch_rrg(3, 1);
        let m0 = ModeSet::of(&[0]);
        let m1 = ModeSet::of(&[1]);
        let nets = vec![
            RouteNet {
                name: "a".into(),
                source: rrg.logic_source(site(1, 2, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(site(3, 2, 0)),
                    activation: m0,
                }],
            },
            RouteNet {
                name: "b".into(),
                source: rrg.logic_source(site(1, 1, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(site(3, 2, 0)),
                    activation: m1,
                }],
            },
        ];
        let mut router = Router::new(&rrg, RouterOptions::for_modes(2));
        let routing = router.route(&nets);
        assert!(
            routing.success,
            "mode-disjoint nets must share the single track"
        );
        // Same-mode version must fail on width-1 fabric only if they truly
        // collide; sanity: both in mode 0 targeting the same sink site
        // needs 2 IPINs — capacity allows that, but the sink sits on
        // shared wires... keep the positive assertion only.
    }

    #[test]
    fn same_mode_conflict_fails_on_width_one() {
        // Two *same-mode* nets from stacked sources to far targets sharing
        // one vertical corridor of width 1 cannot both route.
        let rrg = arch_rrg(2, 1);
        let m0 = ModeSet::of(&[0]);
        let nets = vec![
            RouteNet {
                name: "a".into(),
                source: rrg.logic_source(site(1, 1, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(site(2, 2, 0)),
                    activation: m0,
                }],
            },
            RouteNet {
                name: "b".into(),
                source: rrg.logic_source(site(1, 2, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(site(2, 1, 0)),
                    activation: m0,
                }],
            },
        ];
        let options = RouterOptions {
            max_iterations: 12,
            ..RouterOptions::default()
        };
        let mut router = Router::new(&rrg, options);
        let routing = router.route(&nets);
        // With W=1 and crossing diagonals, congestion may or may not be
        // resolvable depending on fabric details; accept either outcome
        // but require a definite answer.
        assert!(routing.iterations >= 1);
        if !routing.success {
            assert!(routing.overused_nodes > 0);
        }
    }

    #[test]
    fn activation_union_at_shared_sink() {
        // One net whose two sinks include the same SINK node in different
        // modes — activation on the shared path must be the union.
        let rrg = arch_rrg(3, 2);
        let m0 = ModeSet::of(&[0]);
        let m1 = ModeSet::of(&[1]);
        let sink = rrg.logic_sink(site(3, 3, 0));
        let net = RouteNet {
            name: "u".into(),
            source: rrg.logic_source(site(1, 1, 0)),
            sinks: vec![
                RouteSink {
                    node: sink,
                    activation: m0,
                },
                RouteSink {
                    node: sink,
                    activation: m1,
                },
            ],
        };
        let mut router = Router::new(&rrg, RouterOptions::for_modes(2));
        let routing = router.route(std::slice::from_ref(&net));
        assert!(routing.success);
        let route = &routing.nets[0];
        let p0 = route.sink_pos[0];
        let p1 = route.sink_pos[1];
        assert_eq!(p0, p1, "same sink node shares the tree position");
        assert_eq!(route.tree[p0 as usize].activation, m0 | m1);
        // Root carries the union too.
        assert_eq!(route.tree[0].activation, m0 | m1);
    }

    #[test]
    fn per_mode_wirelength_counts() {
        let rrg = arch_rrg(4, 4);
        let m0 = ModeSet::of(&[0]);
        let m1 = ModeSet::of(&[1]);
        let net = RouteNet {
            name: "n".into(),
            source: rrg.logic_source(site(1, 1, 0)),
            sinks: vec![
                RouteSink {
                    node: rrg.logic_sink(site(4, 1, 0)),
                    activation: m0,
                },
                RouteSink {
                    node: rrg.logic_sink(site(1, 4, 0)),
                    activation: m1,
                },
            ],
        };
        let mut router = Router::new(&rrg, RouterOptions::for_modes(2));
        let routing = router.route(std::slice::from_ref(&net));
        assert!(routing.success);
        let w0 = routing.wires_in_mode(&rrg, 0);
        let w1 = routing.wires_in_mode(&rrg, 1);
        let total = routing.total_wires(&rrg);
        assert!(w0 >= 3 && w1 >= 3);
        // The two branches are mode-exclusive: total = w0 + w1 unless a
        // trunk is shared (then total < w0 + w1).
        assert!(total <= w0 + w1);
        assert!(total >= w0.max(w1));
    }

    #[test]
    fn deterministic_routing() {
        let rrg = arch_rrg(4, 3);
        let all = ModeSet::of(&[0]);
        let nets: Vec<RouteNet> = (1..=3u16)
            .map(|y| RouteNet {
                name: format!("n{y}"),
                source: rrg.logic_source(site(1, y, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(site(4, 5 - y, 0)),
                    activation: all,
                }],
            })
            .collect();
        let r1 = Router::new(&rrg, RouterOptions::default()).route(&nets);
        let r2 = Router::new(&rrg, RouterOptions::default()).route(&nets);
        assert_eq!(r1.iterations, r2.iterations);
        for (a, b) in r1.nets.iter().zip(&r2.nets) {
            assert_eq!(a.tree.len(), b.tree.len());
            for (x, y) in a.tree.iter().zip(&b.tree) {
                assert_eq!(x.node, y.node);
            }
        }
    }

    #[test]
    fn bbox_growth_reaches_full_fabric() {
        let extent = 1_000_000usize;
        let mut m = 0usize;
        let mut steps = 0;
        while m < extent {
            m = grow_margin(m, extent);
            steps += 1;
        }
        assert!(steps <= 21, "doubling reaches any fabric quickly");
        // The cap turns the former usize::MAX saturation point into a
        // fixed point at the fabric extent: growth on an unroutable sink
        // terminates instead of "growing" a saturated margin forever.
        assert_eq!(grow_margin(extent, extent), extent, "fixed point at cap");
        assert_eq!(grow_margin(usize::MAX, extent), extent, "clamped");
    }

    #[test]
    fn initial_margin_clamped_to_fabric_extent() {
        // A corner-to-corner net has HPWL 2·(n+1) on an (n+2)² fabric;
        // with a tiny divisor its seeded margin would exceed the extent —
        // the clamp caps it up front so `grow_margin` never burns steps
        // on boxes `net_bbox` re-clamps anyway.
        let rrg = arch_rrg(6, 2);
        let all = ModeSet::of(&[0]);
        let corner = RouteNet {
            name: "corner".into(),
            source: rrg.logic_source(site(1, 1, 0)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(site(6, 6, 0)),
                activation: all,
            }],
        };
        let extent = fabric_extent(&rrg);
        let options = RouterOptions {
            hpwl_margin_div: 1,
            bbox_margin: usize::MAX,
            ..RouterOptions::default()
        };
        let m = initial_margin(&rrg, &corner, &options, extent);
        assert_eq!(m, extent, "margin clamped to the fabric extent");
        let fixed = RouterOptions {
            hpwl_margin_div: 0,
            bbox_margin: usize::MAX,
            ..RouterOptions::default()
        };
        assert_eq!(initial_margin(&rrg, &corner, &fixed, extent), extent);
        // Seeded margins go through the same clamp, and the clamped
        // margin still routes the corner-to-corner net.
        let margins = seeded_margins(&rrg, std::slice::from_ref(&corner), &options);
        assert_eq!(margins, vec![extent]);
        let routing = Router::new(&rrg, options).route_with_margins(&[corner], &margins);
        assert!(routing.success, "clamped margin keeps routability");
    }

    #[test]
    fn steiner_topology_is_deterministic_and_complete() {
        let rrg = arch_rrg(8, 2);
        let all = ModeSet::of(&[0]);
        let net = RouteNet {
            name: "bcast".into(),
            source: rrg.logic_source(site(4, 4, 0)),
            sinks: (1..=8u16)
                .map(|x| RouteSink {
                    node: rrg.logic_sink(site(x, if x % 2 == 0 { 1 } else { 8 }, 0)),
                    activation: all,
                })
                .collect(),
        };
        let segs = steiner_segments(&rrg, &net);
        assert_eq!(segs.len(), net.sinks.len(), "one segment per sink");
        let mut sinks: Vec<u32> = segs.iter().map(|s| s.sink).collect();
        sinks.sort_unstable();
        assert_eq!(sinks, (0..8).collect::<Vec<u32>>(), "every sink covered");
        assert_eq!(segs, steiner_segments(&rrg, &net), "deterministic");
        // The first connection attaches at the source.
        assert_eq!((segs[0].ax, segs[0].ay), (4, 4));
    }

    #[test]
    fn steiner_mode_routes_high_fanout_net() {
        let rrg = arch_rrg(7, 6);
        let all = ModeSet::of(&[0]);
        let sinks: Vec<RouteSink> = (0..12)
            .map(|i| RouteSink {
                node: rrg.logic_sink(site(1 + (i % 7) as u16, 1 + (i / 2) as u16, 0)),
                activation: all,
            })
            .filter({
                let src = rrg.logic_sink(site(4, 4, 0));
                move |s| s.node != src
            })
            .collect();
        let net = RouteNet {
            name: "bcast".into(),
            source: rrg.logic_source(site(4, 4, 0)),
            sinks,
        };
        let plain = Router::new(&rrg, RouterOptions::default()).route(std::slice::from_ref(&net));
        assert!(plain.success);
        let steiner_opts = RouterOptions::default().with_steiner(4);
        let steiner = Router::new(&rrg, steiner_opts).route(std::slice::from_ref(&net));
        assert!(steiner.success, "Steiner mode keeps routability");
        verify_tree(&rrg, &net, &steiner.nets[0], ModeSpace::new(1));
        // Below the threshold the gate stays closed: byte-identical.
        let gated = RouterOptions::default().with_steiner(net.sinks.len() + 1);
        let off = Router::new(&rrg, gated).route(std::slice::from_ref(&net));
        assert_eq!(off.iterations, plain.iterations);
        assert_eq!(off.nets[0].tree, plain.nets[0].tree);
        assert_eq!(off.nets[0].sink_pos, plain.nets[0].sink_pos);
    }

    #[test]
    fn unreachable_nets_reported_by_name() {
        let rrg = arch_rrg(4, 2);
        let all = ModeSet::of(&[0]);
        let ok = RouteNet {
            name: "ok".into(),
            source: rrg.logic_source(site(1, 1, 0)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(site(3, 3, 0)),
                activation: all,
            }],
        };
        let routing = Router::new(&rrg, RouterOptions::default()).route(std::slice::from_ref(&ok));
        assert!(routing.success);
        assert!(routing
            .unreachable_nets(std::slice::from_ref(&ok))
            .is_empty());
    }

    #[test]
    fn bbox_contains_and_covers() {
        let rrg = arch_rrg(4, 2);
        let all = ModeSet::of(&[0]);
        let net = RouteNet {
            name: "n".into(),
            source: rrg.logic_source(site(2, 2, 0)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(site(3, 3, 0)),
                activation: all,
            }],
        };
        let tight = net_bbox(&rrg, &net, 0, 10, 10);
        assert!(tight.contains(2, 2) && tight.contains(3, 3));
        assert!(!tight.contains(0, 0) && !tight.contains(5, 3));
        assert!(!tight.covers_fabric(10, 10));
        let full = net_bbox(&rrg, &net, usize::MAX, 10, 10);
        assert!(full.covers_fabric(10, 10), "MAX margin disables pruning");
    }

    #[test]
    fn scratch_arena_is_stable_across_route_calls() {
        // The acceptance check for "zero per-net allocations in steady
        // state": re-routing the same nets with a reused router must not
        // grow any scratch buffer, and must produce identical results.
        let rrg = arch_rrg(6, 3);
        let all = ModeSet::of(&[0]);
        let nets: Vec<RouteNet> = (1..=5u16)
            .map(|y| RouteNet {
                name: format!("n{y}"),
                source: rrg.logic_source(site(1, y, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(site(6, 6 - y, 0)),
                    activation: all,
                }],
            })
            .collect();
        let mut fresh = Router::new(&rrg, RouterOptions::default());
        let expected = fresh.route(&nets);

        let mut router = Router::new(&rrg, RouterOptions::default());
        let _warmup = router.route(&nets);
        let footprint = router.scratch_footprint();
        assert!(footprint > 0, "scratch buffers are in use");
        for _ in 0..3 {
            let again = router.route(&nets);
            assert_eq!(router.scratch_footprint(), footprint, "no scratch growth");
            // route() resets congestion state: repeated calls are
            // idempotent down to the exact trees.
            assert_eq!(again.iterations, expected.iterations);
            for (a, b) in again.nets.iter().zip(&expected.nets) {
                assert_eq!(a.tree, b.tree);
                assert_eq!(a.sink_pos, b.sink_pos);
            }
        }
    }

    #[test]
    fn fingerprint_tracks_bbox_margin() {
        let a = RouterOptions::default();
        let b = RouterOptions {
            bbox_margin: 5,
            ..RouterOptions::default()
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().starts_with("router-v4"));
        assert_eq!(
            RouterOptions::default().without_bbox().bbox_margin,
            usize::MAX
        );
    }

    #[test]
    fn fingerprint_tracks_steiner_and_cost_schedule() {
        let a = RouterOptions::default();
        assert_eq!(a.steiner_fanout, 0, "Steiner mode is off by default");
        let b = RouterOptions::default().with_steiner(64);
        assert_eq!(b.steiner_fanout, 64);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = RouterOptions {
            pres_fac_first: 0.75,
            ..RouterOptions::default()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = RouterOptions {
            history_cost: 0.5,
            ..RouterOptions::default()
        };
        assert_ne!(a.fingerprint(), d.fingerprint());
        let e = RouterOptions {
            pres_fac_mult: 2.0,
            ..RouterOptions::default()
        };
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_incremental_and_hpwl_seeding() {
        let a = RouterOptions::default();
        assert!(a.incremental, "incremental rip-up is the default");
        let b = RouterOptions::default().with_full_reroute();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = RouterOptions {
            hpwl_margin_div: 0,
            ..RouterOptions::default()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn hpwl_seeding_widens_long_nets_only() {
        let rrg = arch_rrg(9, 2);
        let all = ModeSet::of(&[0]);
        let short = RouteNet {
            name: "short".into(),
            source: rrg.logic_source(site(4, 4, 0)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(site(5, 4, 0)),
                activation: all,
            }],
        };
        let long = RouteNet {
            name: "long".into(),
            source: rrg.logic_source(site(1, 1, 0)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(site(9, 9, 0)),
                activation: all,
            }],
        };
        let options = RouterOptions::default();
        let margins = seeded_margins(&rrg, &[short, long], &options);
        assert_eq!(margins[0], options.bbox_margin, "short nets keep the floor");
        assert_eq!(margins[1], 16 / options.hpwl_margin_div, "hpwl 16 scaled");
        assert!(margins[1] > margins[0]);

        let fixed = RouterOptions {
            hpwl_margin_div: 0,
            ..RouterOptions::default()
        };
        let rrg2 = arch_rrg(9, 2);
        let nets: Vec<RouteNet> = Vec::new();
        assert!(seeded_margins(&rrg2, &nets, &fixed).is_empty());
    }

    #[test]
    fn route_with_margins_matches_options_derived_margins() {
        let rrg = arch_rrg(6, 3);
        let all = ModeSet::of(&[0]);
        let nets: Vec<RouteNet> = (1..=5u16)
            .map(|y| RouteNet {
                name: format!("n{y}"),
                source: rrg.logic_source(site(1, y, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(site(6, 6 - y, 0)),
                    activation: all,
                }],
            })
            .collect();
        let options = RouterOptions::default();
        let margins = seeded_margins(&rrg, &nets, &options);
        let implicit = Router::new(&rrg, options).route(&nets);
        let explicit = Router::new(&rrg, options).route_with_margins(&nets, &margins);
        assert_eq!(implicit.iterations, explicit.iterations);
        for (a, b) in implicit.nets.iter().zip(&explicit.nets) {
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.sink_pos, b.sink_pos);
        }
    }
}
