//! Minimum-channel-width search.
//!
//! The paper sizes the fabric "20% bigger than the minimum needed" in both
//! array area and channel width (§IV-B). The minimum channel width is
//! found the way VPR does it: route the design repeatedly while binary
//! searching the channel width.

use crate::{RouteNet, Router, RouterOptions, Routing};
use mm_arch::{Architecture, RoutingGraph};

/// Result of the minimum-channel-width search.
#[derive(Debug)]
pub struct MinWidthResult {
    /// The smallest channel width that routed successfully.
    pub min_width: usize,
    /// The routing obtained at `min_width`.
    pub routing: Routing,
    /// The RRG at `min_width`.
    pub rrg: RoutingGraph,
}

/// Finds the minimum channel width for which `nets(rrg)` routes on `arch`,
/// scanning `4..=max_width` by doubling then binary search.
///
/// The net list must be rebuilt per width because RRG node ids change;
/// `nets` receives each candidate graph.
///
/// Returns `None` if even `max_width` fails.
pub fn min_channel_width(
    arch: &Architecture,
    options: &RouterOptions,
    max_width: usize,
    mut nets: impl FnMut(&RoutingGraph) -> Vec<RouteNet>,
) -> Option<MinWidthResult> {
    let try_width = |w: usize, nets: &mut dyn FnMut(&RoutingGraph) -> Vec<RouteNet>| {
        let rrg = RoutingGraph::build(&arch.with_channel_width(w));
        let net_list = nets(&rrg);
        let mut router = Router::new(&rrg, *options);
        let routing = router.route(&net_list);
        (rrg, routing)
    };

    // Exponential probe upwards from 4.
    let mut lo = 1usize; // highest known-failing width (0 = unknown)
    let mut hi = 4usize.min(max_width);
    let best: (usize, RoutingGraph, Routing);
    loop {
        let (rrg, routing) = try_width(hi, &mut nets);
        if routing.success {
            best = (hi, rrg, routing);
            break;
        }
        lo = hi;
        if hi >= max_width {
            return None;
        }
        hi = (hi * 2).min(max_width);
    }

    // Binary search in (lo, hi).
    let (mut best_w, mut best_rrg, mut best_routing) = best;
    let mut high = best_w;
    while high - lo > 1 {
        let mid = (lo + high) / 2;
        let (rrg, routing) = try_width(mid, &mut nets);
        if routing.success {
            high = mid;
            best_w = mid;
            best_rrg = rrg;
            best_routing = routing;
        } else {
            lo = mid;
        }
    }

    Some(MinWidthResult {
        min_width: best_w,
        routing: best_routing,
        rrg: best_rrg,
    })
}

/// The paper's relaxed width: 20% above the minimum (rounded up).
#[must_use]
pub fn relaxed_width(min_width: usize) -> usize {
    ((min_width as f64) * 1.2).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteSink;
    use mm_arch::Site;
    use mm_boolexpr::ModeSet;

    /// Dense all-to-neighbour traffic on a small array.
    fn traffic(rrg: &RoutingGraph) -> Vec<RouteNet> {
        let n = rrg.arch().grid as u16;
        let all = ModeSet::of(&[0]);
        let mut nets = Vec::new();
        for y in 1..=n {
            for x in 1..=n {
                let tx = n + 1 - x;
                let ty = n + 1 - y;
                if (tx, ty) == (x, y) {
                    continue;
                }
                nets.push(RouteNet {
                    name: format!("n{x}_{y}"),
                    source: rrg.logic_source(Site::new(x, y, 0)),
                    sinks: vec![RouteSink {
                        node: rrg.logic_sink(Site::new(tx, ty, 0)),
                        activation: all,
                    }],
                });
            }
        }
        nets
    }

    #[test]
    fn finds_minimum_and_is_tight() {
        let arch = Architecture::new(4, 4, 1);
        let options = RouterOptions {
            max_iterations: 25,
            ..RouterOptions::default()
        };
        let result = min_channel_width(&arch, &options, 64, traffic).expect("routable");
        assert!(result.routing.success);
        assert!(result.min_width >= 2, "crossing traffic needs width ≥ 2");

        // One less must fail (that is what "minimum" means).
        if result.min_width > 1 {
            let w = result.min_width - 1;
            let rrg = RoutingGraph::build(&arch.with_channel_width(w));
            let nets = traffic(&rrg);
            let mut router = Router::new(&rrg, options);
            assert!(!router.route(&nets).success, "width {w} should fail");
        }
    }

    #[test]
    fn unroutable_returns_none() {
        let arch = Architecture::new(4, 3, 1);
        let options = RouterOptions {
            max_iterations: 4,
            ..RouterOptions::default()
        };
        // Cap the width below anything useful for dense traffic.
        let result = min_channel_width(&arch, &options, 1, |rrg| {
            let all = ModeSet::of(&[0]);
            // Four nets all targeting sinks across the same corridor.
            (1..=3u16)
                .flat_map(|y| {
                    [RouteNet {
                        name: format!("a{y}"),
                        source: rrg.logic_source(Site::new(1, y, 0)),
                        sinks: vec![
                            RouteSink {
                                node: rrg.logic_sink(Site::new(3, 4 - y, 0)),
                                activation: all,
                            },
                            RouteSink {
                                node: rrg.logic_sink(Site::new(3, y, 0)),
                                activation: all,
                            },
                        ],
                    }]
                })
                .collect()
        });
        // Width 1 may or may not route this; if it routes, min_width == 1.
        if let Some(r) = result {
            assert_eq!(r.min_width, 1);
        }
    }

    #[test]
    fn relaxed_width_adds_twenty_percent() {
        assert_eq!(relaxed_width(10), 12);
        assert_eq!(relaxed_width(5), 6);
        assert_eq!(relaxed_width(1), 2);
        assert_eq!(relaxed_width(14), 17);
    }
}
