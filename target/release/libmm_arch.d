/root/repo/target/release/libmm_arch.rlib: /root/repo/crates/arch/src/lib.rs /root/repo/crates/arch/src/model.rs /root/repo/crates/arch/src/rrg.rs
