/root/repo/target/release/deps/mm_bench-35ac6510829c4dca.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmm_bench-35ac6510829c4dca.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmm_bench-35ac6510829c4dca.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
