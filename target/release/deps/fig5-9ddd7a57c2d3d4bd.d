/root/repo/target/release/deps/fig5-9ddd7a57c2d3d4bd.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-9ddd7a57c2d3d4bd: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
