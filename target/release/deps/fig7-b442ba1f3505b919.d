/root/repo/target/release/deps/fig7-b442ba1f3505b919.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-b442ba1f3505b919: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
