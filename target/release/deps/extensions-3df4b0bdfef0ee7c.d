/root/repo/target/release/deps/extensions-3df4b0bdfef0ee7c.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-3df4b0bdfef0ee7c: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
