/root/repo/target/release/deps/multimode-83e8a517a15d9ba7.d: src/lib.rs

/root/repo/target/release/deps/libmultimode-83e8a517a15d9ba7.rlib: src/lib.rs

/root/repo/target/release/deps/libmultimode-83e8a517a15d9ba7.rmeta: src/lib.rs

src/lib.rs:
