/root/repo/target/release/deps/mm_gen-b2aa9953a72c481b.d: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs

/root/repo/target/release/deps/libmm_gen-b2aa9953a72c481b.rlib: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs

/root/repo/target/release/deps/libmm_gen-b2aa9953a72c481b.rmeta: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs

crates/gen/src/lib.rs:
crates/gen/src/fir.rs:
crates/gen/src/mcnc.rs:
crates/gen/src/regex.rs:
crates/gen/src/words.rs:
