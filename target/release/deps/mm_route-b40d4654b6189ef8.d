/root/repo/target/release/deps/mm_route-b40d4654b6189ef8.d: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

/root/repo/target/release/deps/libmm_route-b40d4654b6189ef8.rlib: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

/root/repo/target/release/deps/libmm_route-b40d4654b6189ef8.rmeta: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

crates/route/src/lib.rs:
crates/route/src/minw.rs:
crates/route/src/nets.rs:
crates/route/src/router.rs:
