/root/repo/target/release/deps/mm_netlist-09f9f5cacb39b31c.d: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs

/root/repo/target/release/deps/libmm_netlist-09f9f5cacb39b31c.rlib: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs

/root/repo/target/release/deps/libmm_netlist-09f9f5cacb39b31c.rmeta: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs

crates/netlist/src/lib.rs:
crates/netlist/src/blif.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gates.rs:
crates/netlist/src/lut.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/truth.rs:
