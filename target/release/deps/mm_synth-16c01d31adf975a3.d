/root/repo/target/release/deps/mm_synth-16c01d31adf975a3.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

/root/repo/target/release/deps/libmm_synth-16c01d31adf975a3.rlib: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

/root/repo/target/release/deps/libmm_synth-16c01d31adf975a3.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/map.rs:
