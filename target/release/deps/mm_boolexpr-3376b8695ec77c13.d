/root/repo/target/release/deps/mm_boolexpr-3376b8695ec77c13.d: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

/root/repo/target/release/deps/libmm_boolexpr-3376b8695ec77c13.rlib: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

/root/repo/target/release/deps/libmm_boolexpr-3376b8695ec77c13.rmeta: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

crates/boolexpr/src/lib.rs:
crates/boolexpr/src/cube.rs:
crates/boolexpr/src/expr.rs:
crates/boolexpr/src/modeset.rs:
crates/boolexpr/src/qm.rs:
