/root/repo/target/release/deps/experiments-5001677907717f83.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-5001677907717f83: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
