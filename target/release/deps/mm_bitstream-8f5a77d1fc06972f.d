/root/repo/target/release/deps/mm_bitstream-8f5a77d1fc06972f.d: crates/bitstream/src/lib.rs

/root/repo/target/release/deps/libmm_bitstream-8f5a77d1fc06972f.rlib: crates/bitstream/src/lib.rs

/root/repo/target/release/deps/libmm_bitstream-8f5a77d1fc06972f.rmeta: crates/bitstream/src/lib.rs

crates/bitstream/src/lib.rs:
