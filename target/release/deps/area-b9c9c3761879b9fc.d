/root/repo/target/release/deps/area-b9c9c3761879b9fc.d: crates/bench/src/bin/area.rs

/root/repo/target/release/deps/area-b9c9c3761879b9fc: crates/bench/src/bin/area.rs

crates/bench/src/bin/area.rs:
