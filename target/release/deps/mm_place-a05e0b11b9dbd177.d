/root/repo/target/release/deps/mm_place-a05e0b11b9dbd177.d: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

/root/repo/target/release/deps/libmm_place-a05e0b11b9dbd177.rlib: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

/root/repo/target/release/deps/libmm_place-a05e0b11b9dbd177.rmeta: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

crates/place/src/lib.rs:
crates/place/src/annealer.rs:
crates/place/src/netmodel.rs:
crates/place/src/placement.rs:
crates/place/src/qfactor.rs:
