/root/repo/target/release/deps/mm_flow-2418ebbfa5775d03.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs

/root/repo/target/release/deps/libmm_flow-2418ebbfa5775d03.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs

/root/repo/target/release/deps/libmm_flow-2418ebbfa5775d03.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/experiment.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/timing.rs:
crates/core/src/tunable.rs:
