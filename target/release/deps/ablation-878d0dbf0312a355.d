/root/repo/target/release/deps/ablation-878d0dbf0312a355.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-878d0dbf0312a355: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
