/root/repo/target/release/deps/mmflow-0c90f3fecae4ac79.d: crates/cli/src/main.rs

/root/repo/target/release/deps/mmflow-0c90f3fecae4ac79: crates/cli/src/main.rs

crates/cli/src/main.rs:
