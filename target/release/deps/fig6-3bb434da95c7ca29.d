/root/repo/target/release/deps/fig6-3bb434da95c7ca29.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-3bb434da95c7ca29: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
