/root/repo/target/release/deps/mm_engine-88f635965a55c024.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs

/root/repo/target/release/deps/libmm_engine-88f635965a55c024.rlib: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs

/root/repo/target/release/deps/libmm_engine-88f635965a55c024.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/engine.rs:
crates/engine/src/hash.rs:
crates/engine/src/job.rs:
crates/engine/src/json.rs:
crates/engine/src/pool.rs:
