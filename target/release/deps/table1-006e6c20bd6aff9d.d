/root/repo/target/release/deps/table1-006e6c20bd6aff9d.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-006e6c20bd6aff9d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
