/root/repo/target/release/deps/mm_arch-72e6ad5b53d9a01f.d: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

/root/repo/target/release/deps/libmm_arch-72e6ad5b53d9a01f.rlib: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

/root/repo/target/release/deps/libmm_arch-72e6ad5b53d9a01f.rmeta: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

crates/arch/src/lib.rs:
crates/arch/src/model.rs:
crates/arch/src/rrg.rs:
