/root/repo/target/debug/deps/multimode-737fe6faeb410a0e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmultimode-737fe6faeb410a0e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
