/root/repo/target/debug/deps/mmflow-57aeae94fc9017d0.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mmflow-57aeae94fc9017d0: crates/cli/src/main.rs

crates/cli/src/main.rs:
