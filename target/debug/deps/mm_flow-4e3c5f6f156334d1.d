/root/repo/target/debug/deps/mm_flow-4e3c5f6f156334d1.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs

/root/repo/target/debug/deps/libmm_flow-4e3c5f6f156334d1.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs

/root/repo/target/debug/deps/libmm_flow-4e3c5f6f156334d1.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/experiment.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/timing.rs:
crates/core/src/tunable.rs:
