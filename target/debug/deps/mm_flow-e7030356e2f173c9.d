/root/repo/target/debug/deps/mm_flow-e7030356e2f173c9.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs Cargo.toml

/root/repo/target/debug/deps/libmm_flow-e7030356e2f173c9.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/experiment.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/timing.rs:
crates/core/src/tunable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
