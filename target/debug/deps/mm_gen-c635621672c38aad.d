/root/repo/target/debug/deps/mm_gen-c635621672c38aad.d: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs

/root/repo/target/debug/deps/mm_gen-c635621672c38aad: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs

crates/gen/src/lib.rs:
crates/gen/src/fir.rs:
crates/gen/src/mcnc.rs:
crates/gen/src/regex.rs:
crates/gen/src/words.rs:
