/root/repo/target/debug/deps/fig6-821348828be12439.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-821348828be12439: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
