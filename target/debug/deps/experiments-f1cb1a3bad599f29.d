/root/repo/target/debug/deps/experiments-f1cb1a3bad599f29.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-f1cb1a3bad599f29.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
