/root/repo/target/debug/deps/mm_flow-dc244c5ed46a0a44.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs

/root/repo/target/debug/deps/mm_flow-dc244c5ed46a0a44: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/experiment.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/timing.rs:
crates/core/src/tunable.rs:
