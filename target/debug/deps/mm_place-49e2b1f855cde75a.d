/root/repo/target/debug/deps/mm_place-49e2b1f855cde75a.d: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

/root/repo/target/debug/deps/libmm_place-49e2b1f855cde75a.rlib: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

/root/repo/target/debug/deps/libmm_place-49e2b1f855cde75a.rmeta: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

crates/place/src/lib.rs:
crates/place/src/annealer.rs:
crates/place/src/netmodel.rs:
crates/place/src/placement.rs:
crates/place/src/qfactor.rs:
