/root/repo/target/debug/deps/fig5-2f81a0922fd95ab3.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-2f81a0922fd95ab3: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
