/root/repo/target/debug/deps/behavioural_equivalence-a8a50ffe15eaf505.d: tests/behavioural_equivalence.rs

/root/repo/target/debug/deps/behavioural_equivalence-a8a50ffe15eaf505: tests/behavioural_equivalence.rs

tests/behavioural_equivalence.rs:
