/root/repo/target/debug/deps/mm_gen-409fae65b7f908b9.d: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs

/root/repo/target/debug/deps/libmm_gen-409fae65b7f908b9.rmeta: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs

crates/gen/src/lib.rs:
crates/gen/src/fir.rs:
crates/gen/src/mcnc.rs:
crates/gen/src/regex.rs:
crates/gen/src/words.rs:
