/root/repo/target/debug/deps/mm_engine-a2cf1bcd921fb3da.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs

/root/repo/target/debug/deps/mm_engine-a2cf1bcd921fb3da: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/engine.rs:
crates/engine/src/hash.rs:
crates/engine/src/job.rs:
crates/engine/src/json.rs:
crates/engine/src/pool.rs:
