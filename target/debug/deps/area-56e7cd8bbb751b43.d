/root/repo/target/debug/deps/area-56e7cd8bbb751b43.d: crates/bench/src/bin/area.rs

/root/repo/target/debug/deps/area-56e7cd8bbb751b43: crates/bench/src/bin/area.rs

crates/bench/src/bin/area.rs:
