/root/repo/target/debug/deps/behavioural_equivalence-d362b40afde13b90.d: tests/behavioural_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libbehavioural_equivalence-d362b40afde13b90.rmeta: tests/behavioural_equivalence.rs Cargo.toml

tests/behavioural_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
