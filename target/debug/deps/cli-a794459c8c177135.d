/root/repo/target/debug/deps/cli-a794459c8c177135.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-a794459c8c177135: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mmflow=/root/repo/target/debug/mmflow
