/root/repo/target/debug/deps/mmflow-2de6cb2d5499d227.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mmflow-2de6cb2d5499d227: crates/cli/src/main.rs

crates/cli/src/main.rs:
