/root/repo/target/debug/deps/area-81ec36e36c0cd06a.d: crates/bench/src/bin/area.rs

/root/repo/target/debug/deps/libarea-81ec36e36c0cd06a.rmeta: crates/bench/src/bin/area.rs

crates/bench/src/bin/area.rs:
