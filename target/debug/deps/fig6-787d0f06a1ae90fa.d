/root/repo/target/debug/deps/fig6-787d0f06a1ae90fa.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-787d0f06a1ae90fa.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
