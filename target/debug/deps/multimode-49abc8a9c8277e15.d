/root/repo/target/debug/deps/multimode-49abc8a9c8277e15.d: src/lib.rs

/root/repo/target/debug/deps/multimode-49abc8a9c8277e15: src/lib.rs

src/lib.rs:
