/root/repo/target/debug/deps/extensions-1eff387d3d3c56d2.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-1eff387d3d3c56d2: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
