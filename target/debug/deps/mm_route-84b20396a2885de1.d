/root/repo/target/debug/deps/mm_route-84b20396a2885de1.d: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

/root/repo/target/debug/deps/libmm_route-84b20396a2885de1.rlib: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

/root/repo/target/debug/deps/libmm_route-84b20396a2885de1.rmeta: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

crates/route/src/lib.rs:
crates/route/src/minw.rs:
crates/route/src/nets.rs:
crates/route/src/router.rs:
