/root/repo/target/debug/deps/mmflow-fecc29bbeebb43e4.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mmflow-fecc29bbeebb43e4: crates/cli/src/main.rs

crates/cli/src/main.rs:
