/root/repo/target/debug/deps/mm_synth-f0c5338ad654c093.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs Cargo.toml

/root/repo/target/debug/deps/libmm_synth-f0c5338ad654c093.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/map.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
