/root/repo/target/debug/deps/mm_netlist-17584739f083370b.d: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs

/root/repo/target/debug/deps/libmm_netlist-17584739f083370b.rlib: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs

/root/repo/target/debug/deps/libmm_netlist-17584739f083370b.rmeta: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs

crates/netlist/src/lib.rs:
crates/netlist/src/blif.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gates.rs:
crates/netlist/src/lut.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/truth.rs:
