/root/repo/target/debug/deps/mm_place-b92b5707214f230b.d: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs Cargo.toml

/root/repo/target/debug/deps/libmm_place-b92b5707214f230b.rmeta: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs Cargo.toml

crates/place/src/lib.rs:
crates/place/src/annealer.rs:
crates/place/src/netmodel.rs:
crates/place/src/placement.rs:
crates/place/src/qfactor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
