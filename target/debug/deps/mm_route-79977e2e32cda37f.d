/root/repo/target/debug/deps/mm_route-79977e2e32cda37f.d: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

/root/repo/target/debug/deps/libmm_route-79977e2e32cda37f.rmeta: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

crates/route/src/lib.rs:
crates/route/src/minw.rs:
crates/route/src/nets.rs:
crates/route/src/router.rs:
