/root/repo/target/debug/deps/mm_synth-e6c39d88f96f66ba.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

/root/repo/target/debug/deps/libmm_synth-e6c39d88f96f66ba.rlib: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

/root/repo/target/debug/deps/libmm_synth-e6c39d88f96f66ba.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/map.rs:
