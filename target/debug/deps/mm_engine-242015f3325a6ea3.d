/root/repo/target/debug/deps/mm_engine-242015f3325a6ea3.d: crates/engine/src/lib.rs

/root/repo/target/debug/deps/libmm_engine-242015f3325a6ea3.rlib: crates/engine/src/lib.rs

/root/repo/target/debug/deps/libmm_engine-242015f3325a6ea3.rmeta: crates/engine/src/lib.rs

crates/engine/src/lib.rs:
