/root/repo/target/debug/deps/flow_stages-786657c6fd2ab1e1.d: crates/bench/benches/flow_stages.rs Cargo.toml

/root/repo/target/debug/deps/libflow_stages-786657c6fd2ab1e1.rmeta: crates/bench/benches/flow_stages.rs Cargo.toml

crates/bench/benches/flow_stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
