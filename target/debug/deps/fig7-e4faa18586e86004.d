/root/repo/target/debug/deps/fig7-e4faa18586e86004.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-e4faa18586e86004: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
