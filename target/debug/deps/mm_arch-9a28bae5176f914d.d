/root/repo/target/debug/deps/mm_arch-9a28bae5176f914d.d: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs Cargo.toml

/root/repo/target/debug/deps/libmm_arch-9a28bae5176f914d.rmeta: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/model.rs:
crates/arch/src/rrg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
