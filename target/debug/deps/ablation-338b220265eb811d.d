/root/repo/target/debug/deps/ablation-338b220265eb811d.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-338b220265eb811d: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
