/root/repo/target/debug/deps/mm_synth-e714529a8985bee0.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

/root/repo/target/debug/deps/libmm_synth-e714529a8985bee0.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/map.rs:
