/root/repo/target/debug/deps/experiments-34c1463008af0270.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-34c1463008af0270: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
