/root/repo/target/debug/deps/fig7-a9b75896db46e4fe.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-a9b75896db46e4fe.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
