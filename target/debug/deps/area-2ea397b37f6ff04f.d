/root/repo/target/debug/deps/area-2ea397b37f6ff04f.d: crates/bench/src/bin/area.rs

/root/repo/target/debug/deps/area-2ea397b37f6ff04f: crates/bench/src/bin/area.rs

crates/bench/src/bin/area.rs:
