/root/repo/target/debug/deps/cli-b79c0923988d7eab.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-b79c0923988d7eab: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mmflow=/root/repo/target/debug/mmflow
