/root/repo/target/debug/deps/extensions-58b511c024eaba80.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/libextensions-58b511c024eaba80.rmeta: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
