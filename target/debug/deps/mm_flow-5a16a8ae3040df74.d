/root/repo/target/debug/deps/mm_flow-5a16a8ae3040df74.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs Cargo.toml

/root/repo/target/debug/deps/libmm_flow-5a16a8ae3040df74.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/timing.rs crates/core/src/tunable.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/experiment.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/timing.rs:
crates/core/src/tunable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
