/root/repo/target/debug/deps/mm_boolexpr-74c4c491c45aba13.d: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

/root/repo/target/debug/deps/mm_boolexpr-74c4c491c45aba13: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

crates/boolexpr/src/lib.rs:
crates/boolexpr/src/cube.rs:
crates/boolexpr/src/expr.rs:
crates/boolexpr/src/modeset.rs:
crates/boolexpr/src/qm.rs:
