/root/repo/target/debug/deps/mm_arch-c296fe74c46020c9.d: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

/root/repo/target/debug/deps/libmm_arch-c296fe74c46020c9.rmeta: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

crates/arch/src/lib.rs:
crates/arch/src/model.rs:
crates/arch/src/rrg.rs:
