/root/repo/target/debug/deps/mm_arch-c68741348fd8927b.d: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

/root/repo/target/debug/deps/libmm_arch-c68741348fd8927b.rlib: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

/root/repo/target/debug/deps/libmm_arch-c68741348fd8927b.rmeta: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

crates/arch/src/lib.rs:
crates/arch/src/model.rs:
crates/arch/src/rrg.rs:
