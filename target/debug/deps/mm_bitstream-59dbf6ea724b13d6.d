/root/repo/target/debug/deps/mm_bitstream-59dbf6ea724b13d6.d: crates/bitstream/src/lib.rs

/root/repo/target/debug/deps/mm_bitstream-59dbf6ea724b13d6: crates/bitstream/src/lib.rs

crates/bitstream/src/lib.rs:
