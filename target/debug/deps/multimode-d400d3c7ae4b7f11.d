/root/repo/target/debug/deps/multimode-d400d3c7ae4b7f11.d: src/lib.rs

/root/repo/target/debug/deps/libmultimode-d400d3c7ae4b7f11.rmeta: src/lib.rs

src/lib.rs:
