/root/repo/target/debug/deps/ablation-54d5a5ed74ab7168.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-54d5a5ed74ab7168: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
