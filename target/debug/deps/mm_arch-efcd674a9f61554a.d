/root/repo/target/debug/deps/mm_arch-efcd674a9f61554a.d: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

/root/repo/target/debug/deps/mm_arch-efcd674a9f61554a: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs

crates/arch/src/lib.rs:
crates/arch/src/model.rs:
crates/arch/src/rrg.rs:
