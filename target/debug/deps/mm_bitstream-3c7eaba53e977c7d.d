/root/repo/target/debug/deps/mm_bitstream-3c7eaba53e977c7d.d: crates/bitstream/src/lib.rs

/root/repo/target/debug/deps/libmm_bitstream-3c7eaba53e977c7d.rmeta: crates/bitstream/src/lib.rs

crates/bitstream/src/lib.rs:
