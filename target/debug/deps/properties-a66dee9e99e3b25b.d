/root/repo/target/debug/deps/properties-a66dee9e99e3b25b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a66dee9e99e3b25b: tests/properties.rs

tests/properties.rs:
