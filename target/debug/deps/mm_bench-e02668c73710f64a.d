/root/repo/target/debug/deps/mm_bench-e02668c73710f64a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmm_bench-e02668c73710f64a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
