/root/repo/target/debug/deps/extensions-9ba54030bf5adf1e.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-9ba54030bf5adf1e.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
