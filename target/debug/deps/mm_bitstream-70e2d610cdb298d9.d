/root/repo/target/debug/deps/mm_bitstream-70e2d610cdb298d9.d: crates/bitstream/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmm_bitstream-70e2d610cdb298d9.rmeta: crates/bitstream/src/lib.rs Cargo.toml

crates/bitstream/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
