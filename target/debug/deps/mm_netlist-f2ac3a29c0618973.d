/root/repo/target/debug/deps/mm_netlist-f2ac3a29c0618973.d: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs Cargo.toml

/root/repo/target/debug/deps/libmm_netlist-f2ac3a29c0618973.rmeta: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/blif.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gates.rs:
crates/netlist/src/lut.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/truth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
