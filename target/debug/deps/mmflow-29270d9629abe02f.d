/root/repo/target/debug/deps/mmflow-29270d9629abe02f.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libmmflow-29270d9629abe02f.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
