/root/repo/target/debug/deps/mm_netlist-c2e027bed04be501.d: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs

/root/repo/target/debug/deps/mm_netlist-c2e027bed04be501: crates/netlist/src/lib.rs crates/netlist/src/blif.rs crates/netlist/src/error.rs crates/netlist/src/gates.rs crates/netlist/src/lut.rs crates/netlist/src/sim.rs crates/netlist/src/truth.rs

crates/netlist/src/lib.rs:
crates/netlist/src/blif.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gates.rs:
crates/netlist/src/lut.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/truth.rs:
