/root/repo/target/debug/deps/experiments-bc48229ff3c7ceb0.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-bc48229ff3c7ceb0: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
