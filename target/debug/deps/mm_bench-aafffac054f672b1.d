/root/repo/target/debug/deps/mm_bench-aafffac054f672b1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmm_bench-aafffac054f672b1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmm_bench-aafffac054f672b1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
