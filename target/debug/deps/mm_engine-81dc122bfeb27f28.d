/root/repo/target/debug/deps/mm_engine-81dc122bfeb27f28.d: crates/engine/src/lib.rs

/root/repo/target/debug/deps/mm_engine-81dc122bfeb27f28: crates/engine/src/lib.rs

crates/engine/src/lib.rs:
