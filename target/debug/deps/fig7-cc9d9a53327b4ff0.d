/root/repo/target/debug/deps/fig7-cc9d9a53327b4ff0.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-cc9d9a53327b4ff0: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
