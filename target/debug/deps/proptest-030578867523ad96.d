/root/repo/target/debug/deps/proptest-030578867523ad96.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-030578867523ad96.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
