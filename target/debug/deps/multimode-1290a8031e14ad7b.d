/root/repo/target/debug/deps/multimode-1290a8031e14ad7b.d: src/lib.rs

/root/repo/target/debug/deps/libmultimode-1290a8031e14ad7b.rlib: src/lib.rs

/root/repo/target/debug/deps/libmultimode-1290a8031e14ad7b.rmeta: src/lib.rs

src/lib.rs:
