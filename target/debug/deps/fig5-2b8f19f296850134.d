/root/repo/target/debug/deps/fig5-2b8f19f296850134.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-2b8f19f296850134: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
