/root/repo/target/debug/deps/ablation-8a55aa4e293dfe05.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-8a55aa4e293dfe05.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
