/root/repo/target/debug/deps/extensions-da494704209e2632.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-da494704209e2632: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
