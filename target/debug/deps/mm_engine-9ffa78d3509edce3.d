/root/repo/target/debug/deps/mm_engine-9ffa78d3509edce3.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libmm_engine-9ffa78d3509edce3.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/engine.rs:
crates/engine/src/hash.rs:
crates/engine/src/job.rs:
crates/engine/src/json.rs:
crates/engine/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
