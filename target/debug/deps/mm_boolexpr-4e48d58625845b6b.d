/root/repo/target/debug/deps/mm_boolexpr-4e48d58625845b6b.d: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

/root/repo/target/debug/deps/libmm_boolexpr-4e48d58625845b6b.rmeta: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

crates/boolexpr/src/lib.rs:
crates/boolexpr/src/cube.rs:
crates/boolexpr/src/expr.rs:
crates/boolexpr/src/modeset.rs:
crates/boolexpr/src/qm.rs:
