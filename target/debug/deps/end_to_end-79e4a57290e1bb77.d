/root/repo/target/debug/deps/end_to_end-79e4a57290e1bb77.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-79e4a57290e1bb77: tests/end_to_end.rs

tests/end_to_end.rs:
