/root/repo/target/debug/deps/mm_synth-9ed4bf4df458a698.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

/root/repo/target/debug/deps/mm_synth-9ed4bf4df458a698: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/cuts.rs crates/synth/src/map.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/cuts.rs:
crates/synth/src/map.rs:
