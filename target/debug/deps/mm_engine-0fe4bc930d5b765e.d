/root/repo/target/debug/deps/mm_engine-0fe4bc930d5b765e.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs

/root/repo/target/debug/deps/libmm_engine-0fe4bc930d5b765e.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/engine.rs crates/engine/src/hash.rs crates/engine/src/job.rs crates/engine/src/json.rs crates/engine/src/pool.rs

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/engine.rs:
crates/engine/src/hash.rs:
crates/engine/src/job.rs:
crates/engine/src/json.rs:
crates/engine/src/pool.rs:
