/root/repo/target/debug/deps/fig6-a681a3dc27a931be.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a681a3dc27a931be: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
