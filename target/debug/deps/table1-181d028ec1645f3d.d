/root/repo/target/debug/deps/table1-181d028ec1645f3d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-181d028ec1645f3d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
