/root/repo/target/debug/deps/table1-d11c045b042fca09.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-d11c045b042fca09.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
