/root/repo/target/debug/deps/fig5-5dbf6030de878fd9.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-5dbf6030de878fd9: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
