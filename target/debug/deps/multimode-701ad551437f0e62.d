/root/repo/target/debug/deps/multimode-701ad551437f0e62.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmultimode-701ad551437f0e62.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
