/root/repo/target/debug/deps/mm_bench-fb2800a0facd40bb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmm_bench-fb2800a0facd40bb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmm_bench-fb2800a0facd40bb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
