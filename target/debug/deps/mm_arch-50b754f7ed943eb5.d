/root/repo/target/debug/deps/mm_arch-50b754f7ed943eb5.d: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs Cargo.toml

/root/repo/target/debug/deps/libmm_arch-50b754f7ed943eb5.rmeta: crates/arch/src/lib.rs crates/arch/src/model.rs crates/arch/src/rrg.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/model.rs:
crates/arch/src/rrg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
