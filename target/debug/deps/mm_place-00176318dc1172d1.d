/root/repo/target/debug/deps/mm_place-00176318dc1172d1.d: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

/root/repo/target/debug/deps/mm_place-00176318dc1172d1: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

crates/place/src/lib.rs:
crates/place/src/annealer.rs:
crates/place/src/netmodel.rs:
crates/place/src/placement.rs:
crates/place/src/qfactor.rs:
