/root/repo/target/debug/deps/area-af648345147c52e6.d: crates/bench/src/bin/area.rs Cargo.toml

/root/repo/target/debug/deps/libarea-af648345147c52e6.rmeta: crates/bench/src/bin/area.rs Cargo.toml

crates/bench/src/bin/area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
