/root/repo/target/debug/deps/table1-283634d5017c7d0a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-283634d5017c7d0a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
