/root/repo/target/debug/deps/mm_gen-aa2950c10e7e2fed.d: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs Cargo.toml

/root/repo/target/debug/deps/libmm_gen-aa2950c10e7e2fed.rmeta: crates/gen/src/lib.rs crates/gen/src/fir.rs crates/gen/src/mcnc.rs crates/gen/src/regex.rs crates/gen/src/words.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/fir.rs:
crates/gen/src/mcnc.rs:
crates/gen/src/regex.rs:
crates/gen/src/words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
