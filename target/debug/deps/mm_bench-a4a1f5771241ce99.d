/root/repo/target/debug/deps/mm_bench-a4a1f5771241ce99.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mm_bench-a4a1f5771241ce99: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
