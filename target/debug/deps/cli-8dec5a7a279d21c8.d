/root/repo/target/debug/deps/cli-8dec5a7a279d21c8.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-8dec5a7a279d21c8.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_mmflow=placeholder:mmflow
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
