/root/repo/target/debug/deps/mm_route-64df269bb3caec50.d: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs Cargo.toml

/root/repo/target/debug/deps/libmm_route-64df269bb3caec50.rmeta: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs Cargo.toml

crates/route/src/lib.rs:
crates/route/src/minw.rs:
crates/route/src/nets.rs:
crates/route/src/router.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
