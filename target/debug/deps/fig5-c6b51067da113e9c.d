/root/repo/target/debug/deps/fig5-c6b51067da113e9c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-c6b51067da113e9c.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
