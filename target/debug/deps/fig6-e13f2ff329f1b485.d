/root/repo/target/debug/deps/fig6-e13f2ff329f1b485.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-e13f2ff329f1b485: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
