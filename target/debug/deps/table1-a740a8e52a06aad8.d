/root/repo/target/debug/deps/table1-a740a8e52a06aad8.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a740a8e52a06aad8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
