/root/repo/target/debug/deps/fig7-6346928dc24af22d.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-6346928dc24af22d: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
