/root/repo/target/debug/deps/extensions-4c3f2f5b07861ec8.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-4c3f2f5b07861ec8: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
