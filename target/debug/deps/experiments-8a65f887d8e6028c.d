/root/repo/target/debug/deps/experiments-8a65f887d8e6028c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-8a65f887d8e6028c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
