/root/repo/target/debug/deps/mm_bench-f706b246b5709d34.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mm_bench-f706b246b5709d34: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
