/root/repo/target/debug/deps/mmflow-223b4c3f6aa69713.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmmflow-223b4c3f6aa69713.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
