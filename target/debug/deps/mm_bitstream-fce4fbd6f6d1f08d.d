/root/repo/target/debug/deps/mm_bitstream-fce4fbd6f6d1f08d.d: crates/bitstream/src/lib.rs

/root/repo/target/debug/deps/libmm_bitstream-fce4fbd6f6d1f08d.rlib: crates/bitstream/src/lib.rs

/root/repo/target/debug/deps/libmm_bitstream-fce4fbd6f6d1f08d.rmeta: crates/bitstream/src/lib.rs

crates/bitstream/src/lib.rs:
