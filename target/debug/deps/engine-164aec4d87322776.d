/root/repo/target/debug/deps/engine-164aec4d87322776.d: crates/engine/tests/engine.rs

/root/repo/target/debug/deps/engine-164aec4d87322776: crates/engine/tests/engine.rs

crates/engine/tests/engine.rs:
