/root/repo/target/debug/deps/mm_bench-d1b038517b9b0ac8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmm_bench-d1b038517b9b0ac8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
