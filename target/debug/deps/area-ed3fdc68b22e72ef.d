/root/repo/target/debug/deps/area-ed3fdc68b22e72ef.d: crates/bench/src/bin/area.rs

/root/repo/target/debug/deps/area-ed3fdc68b22e72ef: crates/bench/src/bin/area.rs

crates/bench/src/bin/area.rs:
