/root/repo/target/debug/deps/ablation-d1d56f1cec35837a.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-d1d56f1cec35837a: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
