/root/repo/target/debug/deps/mm_route-c71a8b8c2505b679.d: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

/root/repo/target/debug/deps/mm_route-c71a8b8c2505b679: crates/route/src/lib.rs crates/route/src/minw.rs crates/route/src/nets.rs crates/route/src/router.rs

crates/route/src/lib.rs:
crates/route/src/minw.rs:
crates/route/src/nets.rs:
crates/route/src/router.rs:
