/root/repo/target/debug/deps/mm_boolexpr-fe22e4fe297a57fa.d: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs Cargo.toml

/root/repo/target/debug/deps/libmm_boolexpr-fe22e4fe297a57fa.rmeta: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs Cargo.toml

crates/boolexpr/src/lib.rs:
crates/boolexpr/src/cube.rs:
crates/boolexpr/src/expr.rs:
crates/boolexpr/src/modeset.rs:
crates/boolexpr/src/qm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
