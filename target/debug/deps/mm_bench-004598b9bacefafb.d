/root/repo/target/debug/deps/mm_bench-004598b9bacefafb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmm_bench-004598b9bacefafb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
