/root/repo/target/debug/deps/mmflow-877b4499710ecf53.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mmflow-877b4499710ecf53: crates/cli/src/main.rs

crates/cli/src/main.rs:
