/root/repo/target/debug/deps/mm_boolexpr-32af768c9f99cd79.d: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

/root/repo/target/debug/deps/libmm_boolexpr-32af768c9f99cd79.rlib: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

/root/repo/target/debug/deps/libmm_boolexpr-32af768c9f99cd79.rmeta: crates/boolexpr/src/lib.rs crates/boolexpr/src/cube.rs crates/boolexpr/src/expr.rs crates/boolexpr/src/modeset.rs crates/boolexpr/src/qm.rs

crates/boolexpr/src/lib.rs:
crates/boolexpr/src/cube.rs:
crates/boolexpr/src/expr.rs:
crates/boolexpr/src/modeset.rs:
crates/boolexpr/src/qm.rs:
