/root/repo/target/debug/deps/mm_place-9dba0a134628dec8.d: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

/root/repo/target/debug/deps/libmm_place-9dba0a134628dec8.rmeta: crates/place/src/lib.rs crates/place/src/annealer.rs crates/place/src/netmodel.rs crates/place/src/placement.rs crates/place/src/qfactor.rs

crates/place/src/lib.rs:
crates/place/src/annealer.rs:
crates/place/src/netmodel.rs:
crates/place/src/placement.rs:
crates/place/src/qfactor.rs:
