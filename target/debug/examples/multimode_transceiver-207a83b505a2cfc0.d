/root/repo/target/debug/examples/multimode_transceiver-207a83b505a2cfc0.d: examples/multimode_transceiver.rs Cargo.toml

/root/repo/target/debug/examples/libmultimode_transceiver-207a83b505a2cfc0.rmeta: examples/multimode_transceiver.rs Cargo.toml

examples/multimode_transceiver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
