/root/repo/target/debug/examples/fabric_exploration-7cc63a727573eebc.d: examples/fabric_exploration.rs

/root/repo/target/debug/examples/fabric_exploration-7cc63a727573eebc: examples/fabric_exploration.rs

examples/fabric_exploration.rs:
