/root/repo/target/debug/examples/multimode_transceiver-3615bca444ebf015.d: examples/multimode_transceiver.rs

/root/repo/target/debug/examples/multimode_transceiver-3615bca444ebf015: examples/multimode_transceiver.rs

examples/multimode_transceiver.rs:
