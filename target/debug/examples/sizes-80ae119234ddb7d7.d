/root/repo/target/debug/examples/sizes-80ae119234ddb7d7.d: crates/gen/examples/sizes.rs

/root/repo/target/debug/examples/sizes-80ae119234ddb7d7: crates/gen/examples/sizes.rs

crates/gen/examples/sizes.rs:
