/root/repo/target/debug/examples/quickstart-9e1f5d3280e7408c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9e1f5d3280e7408c: examples/quickstart.rs

examples/quickstart.rs:
