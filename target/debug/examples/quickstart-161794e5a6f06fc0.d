/root/repo/target/debug/examples/quickstart-161794e5a6f06fc0.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-161794e5a6f06fc0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
