/root/repo/target/debug/examples/sizes-1c929db2cbd2f512.d: crates/gen/examples/sizes.rs Cargo.toml

/root/repo/target/debug/examples/libsizes-1c929db2cbd2f512.rmeta: crates/gen/examples/sizes.rs Cargo.toml

crates/gen/examples/sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
