/root/repo/target/debug/examples/adaptive_filter-35bfac2906d50142.d: examples/adaptive_filter.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_filter-35bfac2906d50142.rmeta: examples/adaptive_filter.rs Cargo.toml

examples/adaptive_filter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
