/root/repo/target/debug/examples/fabric_exploration-8271a48062338895.d: examples/fabric_exploration.rs Cargo.toml

/root/repo/target/debug/examples/libfabric_exploration-8271a48062338895.rmeta: examples/fabric_exploration.rs Cargo.toml

examples/fabric_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
