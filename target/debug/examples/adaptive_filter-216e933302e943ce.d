/root/repo/target/debug/examples/adaptive_filter-216e933302e943ce.d: examples/adaptive_filter.rs

/root/repo/target/debug/examples/adaptive_filter-216e933302e943ce: examples/adaptive_filter.rs

examples/adaptive_filter.rs:
