//! # multimode — combined implementation of multi-mode circuits
//!
//! Facade crate re-exporting the whole tool-flow stack. See the individual
//! crates for details:
//!
//! * [`boolexpr`] — Boolean mode algebra (mode sets, activation functions).
//! * [`netlist`] — gate-level IR and k-LUT circuits, BLIF I/O.
//! * [`synth`] — AIG-based synthesis and k-LUT technology mapping.
//! * [`arch`] — island-style FPGA model and routing-resource graph.
//! * [`place`] — VPR-style annealing placer and multi-mode combined placement.
//! * [`route`] — PathFinder router with mode-aware wire sharing.
//! * [`bitstream`] — configuration memory model and rewrite-cost metrics.
//! * [`gen`] — multi-mode benchmark generators (regex engines, FIR, MCNC-like),
//!   combinable into N-mode problems (`all_tuples`, `fir_mode_tuples`).
//! * [`flow`] — the paper's tool flow: merging, MDR and DCS flows, and the
//!   N-mode combined comparison (`run_combined_n`).
//! * [`engine`] — parallel batch execution with content-addressed stage
//!   caching (`mmflow batch` and the serve protocol live on top of it).
//!
//! # Quickstart
//!
//! ```no_run
//! use multimode::flow::{DcsFlow, FlowOptions, MultiModeInput};
//! use multimode::gen::regex::RegexEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two modes of a tiny network-monitor transceiver.
//! let a = RegexEngine::compile("GET /index", 4)?.into_lut_circuit();
//! let b = RegexEngine::compile("POST /login", 4)?.into_lut_circuit();
//!
//! let input = MultiModeInput::new(vec![a, b])?;
//! let result = DcsFlow::new(FlowOptions::default()).run(&input)?;
//! println!("parameterized routing bits: {}", result.parameterized_routing_bits());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use mm_arch as arch;
pub use mm_bitstream as bitstream;
pub use mm_boolexpr as boolexpr;
pub use mm_engine as engine;
pub use mm_flow as flow;
pub use mm_gen as gen;
pub use mm_netlist as netlist;
pub use mm_place as place;
pub use mm_route as route;
pub use mm_synth as synth;
