//! Vendored, dependency-free stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the macro/API subset its benches use: [`Criterion`],
//! `bench_function`, [`criterion_group!`] and [`criterion_main!`]. It
//! measures wall-clock medians over a configurable sample count — enough
//! to compare stages locally, with none of criterion's statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Soft cap on total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up period before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut samples = b.samples;
        samples.sort_unstable();
        let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
        let (lo, hi) = (
            samples.first().copied().unwrap_or_default(),
            samples.last().copied().unwrap_or_default(),
        );
        println!(
            "{name:<40} median {median:>12?}  [{lo:?} .. {hi:?}]  ({} samples)",
            samples.len()
        );
        self
    }
}

/// Passed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    warm_up: Duration,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting up to the configured sample count
    /// within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Declares a group of benchmarks, optionally with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)*) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)*) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 3, "{runs}");
    }
}
