//! Vendored, dependency-free stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of the proptest surface its property tests use: the
//! [`proptest!`] macro over functions whose parameters are either
//! `name in <range>` strategies or `name: <type>` arbitrary values, plus
//! [`prop_assert!`]/[`prop_assert_eq!`] and
//! [`test_runner::TestCaseError`].
//!
//! Cases are generated from a fixed seed, so failures are reproducible;
//! there is no shrinking — the failing inputs are printed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`cases` only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Test-runner types referenced by generated code.
pub mod test_runner {
    /// A failed (or rejected) test case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

/// Sampling strategies: ranges of integers, or "arbitrary" for plain
/// typed parameters.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values for one parameter.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types that can be drawn without an explicit strategy
    /// (`name: type` parameters).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);
}

/// Everything the `proptest!` blocks use.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Runs `cases` deterministic cases, reporting the case index on failure.
///
/// Used by the expansion of [`proptest!`]; not part of the public
/// proptest API.
pub fn run_cases(
    test_name: &str,
    cases: u32,
    mut one: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    for case in 0..cases {
        // Stable per (test, case): reruns reproduce the exact failure.
        let seed = 0x00c0_ffee_0000_0000u64
            ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ test_name
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = one(&mut rng) {
            panic!("proptest case {case}/{cases} of '{test_name}' failed: {e}");
        }
    }
}

/// Declares property tests. Supports the proptest syntax subset:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, mask: u64) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each function of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), config.cases, |__rng| {
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

/// Internal: binds the parameters of one property-test case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::strategy::Arbitrary::arbitrary($rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::strategy::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// `assert!` that fails the case (with location info) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
                ),
            );
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 1usize..=9, y in 0u64..100, flag: bool) {
            prop_assert!((1..=9).contains(&x));
            prop_assert!(y < 100);
            let _ = flag;
        }

        #[test]
        fn eq_macro_works(a: u32) {
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_case_info() {
        crate::run_cases("always_fails", 4, |_rng| {
            prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }

    #[test]
    fn question_mark_propagates() {
        crate::run_cases("qmark", 2, |_rng| {
            let r: Result<(), TestCaseError> = Ok(());
            r?;
            Ok(())
        });
    }
}
