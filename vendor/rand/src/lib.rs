//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small subset of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`Rng`], [`SeedableRng`] and [`seq::SliceRandom`].
//!
//! The generator is deliberately *not* the upstream ChaCha-based `StdRng`;
//! it is a SplitMix64-seeded xoshiro256** — deterministic per seed, which
//! is the only property the tool flow relies on (placements, generators
//! and tests are all "deterministic per seed", not "identical to rand").

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a stream of random words.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    ///
    /// Panics if the range is empty, mirroring `rand`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The raw word source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (SplitMix64-seeded xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers, as in `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as usize) % self.len();
                self.get(i)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }

    impl<R: RngCore + ?Sized> RngCore for &mut R {
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }
}

// `prelude` so `use rand::prelude::*` keeps working if it ever appears.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let x = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "{heads}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "shuffle of 100 elements virtually never identity");
        v.sort_unstable();
        assert_eq!(v, orig);
    }
}
