//! The paper's adaptive-filtering experiment in miniature: a low-pass and
//! a high-pass FIR filter with constant-propagated coefficients form a
//! two-mode circuit; Dynamic Circuit Specialization switches between them
//! by rewriting a handful of routing bits.
//!
//! ```sh
//! cargo run --release --example adaptive_filter
//! ```

use multimode::flow::{DcsFlow, FlowOptions, MultiModeInput};
use multimode::gen::fir::{highpass_taps, lowpass_taps, specialized_fir, FirSpec};
use multimode::gen::{fir_generic_reference, regexp_suite};
use multimode::synth::{synthesize, MapOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _ = regexp_suite; // (see multimode_transceiver for the RegExp demo)

    // ---- specialise two filters ------------------------------------------
    let lp = FirSpec {
        name: "lowpass".into(),
        taps: lowpass_taps(14, 7, 7, 42),
        data_width: 8,
    };
    let hp = FirSpec {
        name: "highpass".into(),
        taps: highpass_taps(14, 7, 7, 43),
        data_width: 8,
    };
    println!("low-pass taps:  {:?}", lp.taps);
    println!("high-pass taps: {:?}", hp.taps);

    let lp_mapped = synthesize(&specialized_fir(&lp), MapOptions::default())?;
    let hp_mapped = synthesize(&specialized_fir(&hp), MapOptions::default())?;
    let generic = fir_generic_reference(4);
    println!("\nconstant propagation (paper: 'such a FIR filter is 3 times smaller'):");
    println!("  generic filter:      {} LUTs", generic.lut_count());
    println!("  specialised low-pass:  {} LUTs", lp_mapped.lut_count());
    println!("  specialised high-pass: {} LUTs", hp_mapped.lut_count());

    // ---- merge them into one multi-mode circuit ----------------------------
    let input = MultiModeInput::new(vec![lp_mapped, hp_mapped])?;
    let result = DcsFlow::new(FlowOptions::default()).run(&input)?;
    let stats = result.tunable.stats();
    println!(
        "\nmulti-mode filter on a {0}x{0} region (channel width {1}):",
        result.arch.grid, result.arch.channel_width
    );
    println!("  {stats}");
    println!("  MDR rewrite: {}", result.mdr_cost());
    println!("  DCS rewrite: {}", result.dcs_cost());
    println!(
        "  switching the passband rewrites {} routing bits ({:.1}% of the fabric's {})",
        result.parameterized_routing_bits(),
        100.0 * result.parameterized_routing_bits() as f64 / result.model.routing_bits as f64,
        result.model.routing_bits,
    );

    // A few of the parameterized bits in the paper's Boolean notation.
    println!("\n  first parameterized bits as functions of the mode bit m0:");
    for (switch, expr) in result.param.parameterized_expressions().take(5) {
        println!("    bit[{}] = {expr}", switch.index());
    }
    Ok(())
}
