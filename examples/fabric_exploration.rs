//! Architecture exploration: how the reconfiguration advantage of the
//! multi-mode flow depends on the fabric.
//!
//! Sweeps the channel width and the connection-block flexibility and
//! reports MDR-vs-DCS rewrite costs on a fixed pair of MCNC-class modes —
//! the kind of what-if study the tool flow enables beyond the paper's
//! single fabric.
//!
//! ```sh
//! cargo run --release --example fabric_exploration
//! ```

use multimode::bitstream::speedup;
use multimode::flow::{DcsFlow, FlowOptions, MdrFlow, MultiModeInput};
use multimode::gen::mcnc;
use multimode::synth::{synthesize, MapOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = synthesize(&mcnc::multiplier("mult8", 8), MapOptions::default())?;
    let b = synthesize(
        &mcnc::crc("crc32p24", 0xEDB8_8320, 32, 24),
        MapOptions::default(),
    )?;
    println!(
        "modes: {} ({} LUTs) + {} ({} LUTs)\n",
        a.name(),
        a.lut_count(),
        b.name(),
        b.lut_count()
    );
    let input = MultiModeInput::new(vec![a, b])?;

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>9}",
        "width", "fc_in", "MDR bits", "DCS bits", "speed-up"
    );
    for (width, fc_in) in [
        (12usize, 0.4f64),
        (16, 0.4),
        (20, 0.4),
        (16, 0.25),
        (16, 0.7),
        (16, 1.0),
    ] {
        let mut options = FlowOptions::default().with_fixed_width(width);
        options.fc_in = fc_in;
        let mdr = MdrFlow::new(options).run(&input)?;
        let dcs = DcsFlow::new(options).run(&input)?;
        let mdr_cost = mdr.mdr_cost();
        let dcs_cost = dcs.dcs_cost();
        println!(
            "{width:>6} {fc_in:>8.2} {:>12} {:>12} {:>8.2}x",
            mdr_cost.total(),
            dcs_cost.total(),
            speedup(&mdr_cost, &dcs_cost)
        );
    }
    println!("\n(wider, more flexible fabrics carry more routing state, which");
    println!(" inflates full-region MDR rewrites while DCS keeps touching only");
    println!(" the parameterized bits — the paper's Fig. 6 effect.)");
    Ok(())
}
