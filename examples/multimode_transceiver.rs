//! The paper's motivating scenario: "a mobile transceiver that supports
//! different communication standards … but only uses one at any given
//! time". Here the two standards are two intrusion-detection pattern
//! matchers; the example runs the full MDR-vs-DCS comparison on the pair
//! and prints the per-pair version of Figures 5–7.
//!
//! ```sh
//! cargo run --release --example multimode_transceiver
//! ```

use multimode::flow::{run_pair, FlowOptions, MultiModeInput};
use multimode::gen::regex::RegexEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two protocol monitors that never run simultaneously.
    let http = RegexEngine::compile(
        r"GET /(login|admin|api/v[12])/[a-z0-9_/]{4,}\?(session|token)=[0-9a-f]{16}",
        4,
    )?;
    let dns = RegexEngine::compile(
        r"\x00[\x01\x1c]\x00\x01(.[a-z0-9-]{8,}){2,}\x00\x00[\x01\x1c]tunnel",
        4,
    )?;
    println!(
        "mode 0 (HTTP monitor): {} NFA states, {} LUTs",
        http.state_count(),
        http.lut_circuit().lut_count()
    );
    println!(
        "mode 1 (DNS monitor):  {} NFA states, {} LUTs",
        dns.state_count(),
        dns.lut_circuit().lut_count()
    );

    // Sanity: the matchers really work before we commit them to silicon.
    assert!(http.matches(b"GET /admin/users/list?session=0123456789abcdef HTTP/1.1"));
    assert!(!http.matches(b"GET /index.html HTTP/1.1"));

    let input = MultiModeInput::new(vec![http.into_lut_circuit(), dns.into_lut_circuit()])?;

    let mut options = FlowOptions::default();
    options.placer.inner_num = 2.0;
    println!("\nrunning MDR + DCS (edge matching) + DCS (wire length)...");
    let m = run_pair(&input, &options, "transceiver")?;

    println!(
        "\nregion {0}x{0}; channel widths: MDR {1}, DCS-edge {2}, DCS-wl {3}",
        m.grid, m.width_mdr, m.width_edge, m.width_wirelength
    );
    println!("\nreconfiguration cost (bits rewritten on a mode switch):");
    println!("  MDR  (full region): {}", m.mdr);
    println!("  Diff (changed bits): {}", m.diff);
    println!("  DCS  edge matching: {}", m.dcs_edge);
    println!("  DCS  wire length:   {}", m.dcs_wirelength);
    println!(
        "\nspeed-up vs MDR (paper Fig. 5): edge {:.2}x, wire-length {:.2}x",
        m.speedup_edge(),
        m.speedup_wirelength()
    );
    println!(
        "wire usage per active mode vs MDR (paper Fig. 7): edge {:.0}%, wire-length {:.0}%",
        100.0 * m.wire_ratio_edge(),
        100.0 * m.wire_ratio_wirelength()
    );
    println!(
        "area vs static side-by-side implementation: {:.0}%",
        100.0 * m.area_vs_static()
    );
    Ok(())
}
