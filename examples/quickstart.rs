//! Quickstart: merge two tiny mode circuits by hand and inspect the
//! tunable circuit — a runnable version of the paper's Figures 3 and 4.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use multimode::arch::{Architecture, Site};
use multimode::flow::TunableCircuit;
use multimode::netlist::{LutCircuit, TruthTable};
use multimode::place::{MultiPlacement, Placement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- two tiny mode circuits (paper Fig. 3) ----------------------------
    // Mode 0: y = a AND b        Mode 1: y = a OR NOT b  (registered)
    let mut mode0 = LutCircuit::new("mode0", 4);
    let a0 = mode0.add_input("a")?;
    let b0 = mode0.add_input("b")?;
    let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
    let g0 = mode0.add_lut("g", vec![a0, b0], and2, false)?;
    mode0.add_output("y", g0)?;

    let mut mode1 = LutCircuit::new("mode1", 4);
    let a1 = mode1.add_input("a")?;
    let b1 = mode1.add_input("b")?;
    let or_not = TruthTable::var(2, 0) | !TruthTable::var(2, 1);
    let g1 = mode1.add_lut("g", vec![a1, b1], or_not, true)?;
    mode1.add_output("y", g1)?;

    // ---- a combined placement: same sites in both modes -------------------
    // (Normally the combined placer decides this; here we overlay the two
    // modes by hand so every connection merges.)
    let arch = Architecture::new(4, 2, 4);
    let mut p0 = Placement::new(mode0.block_count());
    p0.assign(a0, Site::new(0, 1, 0));
    p0.assign(b0, Site::new(0, 2, 0));
    p0.assign(g0, Site::new(1, 1, 0));
    p0.assign(mode0.find("y").unwrap(), Site::new(3, 1, 0));
    let mut p1 = Placement::new(mode1.block_count());
    p1.assign(a1, Site::new(0, 1, 0));
    p1.assign(b1, Site::new(0, 2, 0));
    p1.assign(g1, Site::new(1, 1, 0));
    p1.assign(mode1.find("y").unwrap(), Site::new(3, 1, 0));

    let circuits = vec![mode0, mode1];
    let placement = MultiPlacement {
        modes: vec![p0, p1],
    };

    // ---- extract the tunable circuit (paper Fig. 3) ------------------------
    let tunable = TunableCircuit::from_placement(&circuits, &placement, &arch)?;
    let space = tunable.space();
    println!("tunable circuit: {}", tunable.stats());
    println!();
    println!("tunable connections (activation functions):");
    for c in tunable.connections() {
        println!(
            "  {} -> {}   active: {}",
            c.source,
            c.sink,
            c.activation.to_expr(space)
        );
    }

    // ---- parameterized LUT bits (paper Fig. 4) ------------------------------
    let site = Site::new(1, 1, 0);
    let bits = tunable
        .tunable_lut_bits(&circuits, site)
        .expect("logic site is occupied");
    println!();
    println!("tunable LUT at {site}: truth-table cells as functions of the mode bit");
    for (j, f) in bits.truth.iter().enumerate().take(4) {
        println!("  cell[{j:02}] = {}", f.to_expr(space));
    }
    println!("  ... ({} cells total)", bits.truth.len());
    println!("  ff-select = {}", bits.ff_select.to_expr(space));
    println!(
        "  parameterized cells: {} of {}",
        bits.parameterized_bits(space),
        bits.truth.len() + 1
    );

    // Specialising the tunable LUT for each mode gives back the original
    // functions — the correctness property of the merge.
    for mode in 0..2 {
        let spec = tunable.specialized_truth(&circuits, site, mode).unwrap();
        println!("  specialised for mode {mode}: {spec}");
    }
    Ok(())
}
