//! End-to-end integration tests: the full tool flow on multi-LUT circuits,
//! including a three-mode merge (the paper's `m1 m0` encoding) and the
//! complete MDR-vs-DCS experiment invariants.

use multimode::flow::{run_pair, DcsFlow, FlowOptions, MdrFlow, MultiModeInput};
use multimode::netlist::{BlockId, LutCircuit, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = LutCircuit::new(name, 4);
    let mut drivers: Vec<BlockId> = (0..n_inputs)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    for j in 0..n_luts {
        let fanin = rng.gen_range(2..=4.min(drivers.len()));
        let mut ins = Vec::new();
        while ins.len() < fanin {
            let d = drivers[rng.gen_range(0..drivers.len())];
            if !ins.contains(&d) {
                ins.push(d);
            }
        }
        let tt = TruthTable::from_bits(ins.len(), rng.gen());
        let id = c
            .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
            .unwrap();
        drivers.push(id);
    }
    for t in 0..3 {
        let d = drivers[drivers.len() - 1 - t];
        c.add_output(format!("o{t}"), d).unwrap();
    }
    c
}

fn quick_options() -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer.inner_num = 1.0;
    o
}

#[test]
fn full_pair_experiment_invariants() {
    let input = MultiModeInput::new(vec![
        random_circuit("m0", 6, 30, 101),
        random_circuit("m1", 6, 34, 102),
    ])
    .unwrap();
    let m = run_pair(&input, &quick_options(), "it").unwrap();

    // Headline orderings of the paper.
    assert!(m.speedup_wirelength() > 1.0, "DCS-wl beats MDR");
    assert!(m.speedup_edge() > 1.0, "DCS-edge beats MDR");
    assert!(
        m.diff.routing_bits < m.mdr.routing_bits,
        "diff < full region"
    );
    // LUT bits are always fully rewritten in every scenario.
    assert_eq!(m.mdr.lut_bits, m.diff.lut_bits);
    assert_eq!(m.mdr.lut_bits, m.dcs_edge.lut_bits);
    assert_eq!(m.mdr.lut_bits, m.dcs_wirelength.lut_bits);
    // Wire accounting sane: DCS can never use fewer wires per mode than
    // half of MDR (it implements the same circuits).
    assert!(m.wire_ratio_wirelength() > 0.5);
    assert!(m.wire_ratio_edge() > 0.5);
    // Two similar-size modes share one region: area halves, roughly.
    let area = m.area_vs_static();
    assert!(area > 0.4 && area < 0.7, "area ratio {area}");
}

#[test]
fn three_mode_flow() {
    // Three modes need two mode bits; code 3 is a don't-care.
    let circuits = vec![
        random_circuit("a", 5, 14, 201),
        random_circuit("b", 5, 16, 202),
        random_circuit("c", 5, 12, 203),
    ];
    let input = MultiModeInput::new(circuits).unwrap();
    assert_eq!(input.space().bit_count(), 2);

    let result = DcsFlow::new(quick_options()).run(&input).unwrap();
    assert!(result.routing.success);
    let stats = result.tunable.stats();
    assert_eq!(stats.modes, 3);
    // The region holds the largest mode; all three stack onto it.
    assert!(stats.tunable_luts >= 16);
    assert!(stats.tunable_luts <= 16 * 3);

    // Parameterized expressions may now genuinely use both mode bits.
    let mdr = MdrFlow::new(quick_options()).run(&input).unwrap();
    assert!(
        result.dcs_cost().total() < mdr.mdr_cost().total(),
        "DCS wins with three modes too"
    );
    // Every pairwise diff is bounded by the full region.
    for a in 0..3 {
        for b in 0..3 {
            if a != b {
                assert!(mdr.diff_cost(a, b).routing_bits <= mdr.mdr_cost().routing_bits);
            }
        }
    }
}

#[test]
fn single_mode_degenerates_to_static() {
    // One mode: the "multi-mode" circuit is static — no parameterized bits.
    let input = MultiModeInput::new(vec![random_circuit("only", 5, 15, 301)]).unwrap();
    let result = DcsFlow::new(quick_options()).run(&input).unwrap();
    assert_eq!(result.parameterized_routing_bits(), 0);
    assert!(result.param.static_on_bits() > 0);
}

#[test]
fn deterministic_experiments() {
    let input = MultiModeInput::new(vec![
        random_circuit("m0", 5, 12, 401),
        random_circuit("m1", 5, 12, 402),
    ])
    .unwrap();
    let a = run_pair(&input, &quick_options(), "d1").unwrap();
    let b = run_pair(&input, &quick_options(), "d2").unwrap();
    assert_eq!(a.mdr, b.mdr);
    assert_eq!(a.dcs_wirelength, b.dcs_wirelength);
    assert_eq!(a.wires_mdr, b.wires_mdr);
}

#[test]
fn modes_of_different_sizes() {
    // A small mode shares the region of a large one: area = max, not sum.
    let input = MultiModeInput::new(vec![
        random_circuit("big", 6, 40, 501),
        random_circuit("small", 4, 8, 502),
    ])
    .unwrap();
    let m = run_pair(&input, &quick_options(), "asym").unwrap();
    let area = m.area_vs_static();
    assert!(area > 0.7, "region is dominated by the big mode: {area}");
    assert!(m.speedup_wirelength() > 1.0);
}
