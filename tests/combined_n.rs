//! The N-mode combined-implementation campaign, tier-1 visible:
//!
//! 1. A 3-mode problem runs end-to-end through `run_combined_n` *and*
//!    through the batch engine (`flow: combined`), with coherent metrics
//!    and a well-formed JSONL record.
//! 2. **Parity property**: `run_combined_n` over two modes is
//!    byte-identical to the historical `run_pair` — placements, metrics
//!    (widths, costs, wire fingerprints) and JSONL record bytes — across
//!    seeded circuits.

use multimode::engine::{Engine, EngineOptions, FlowKind, Job, JobOutcome};
use multimode::flow::{
    place_combined_n, place_pair, run_combined_n, run_pair, FlowOptions, MultiModeInput,
};
use multimode::netlist::LutCircuit;
use proptest::prelude::*;

/// The repo's shared seeded circuit shape (`mm_gen`).
fn random_circuit(name: &str, n_luts: usize, seed: u64) -> LutCircuit {
    multimode::gen::seeded_test_circuit(name, 5, n_luts, seed)
}

fn quick_options(seed: u64) -> FlowOptions {
    let mut o = FlowOptions::default().with_fixed_width(12).with_seed(seed);
    o.placer.inner_num = 1.0;
    o.router.max_iterations = 30;
    o
}

#[test]
fn three_mode_combined_flow_end_to_end() {
    let circuits = vec![
        random_circuit("m0", 10, 7101),
        random_circuit("m1", 11, 7102),
        random_circuit("m2", 12, 7103),
    ];
    let options = quick_options(0x31);
    let metrics = run_combined_n(&circuits, &options, "three").unwrap();
    assert_eq!(metrics.mode_luts.len(), 3);
    assert_eq!(metrics.tunable_stats.modes, 3);
    assert!(metrics.wires_mdr > 0.0 && metrics.wires_wirelength > 0.0);
    // The diff rewrite (averaged over the 6 ordered mode pairs) beats
    // rewriting the whole region; DCS beats both on routing bits.
    assert!(metrics.diff.routing_bits < metrics.mdr.routing_bits);
    assert!(metrics.dcs_wirelength.routing_bits < metrics.mdr.routing_bits);

    // The same problem through the batch engine, spelled `combined`.
    let flow = FlowKind::parse("combined", None).unwrap();
    assert_eq!(flow.name(), "pair", "record identity stays stable");
    let engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();
    let report = engine.run(vec![Job {
        name: "three".into(),
        circuits,
        flow,
        options,
    }]);
    let result = &report.results[0];
    match result.outcome.as_ref().unwrap() {
        JobOutcome::Pair(m) => assert_eq!(m, &metrics, "engine == direct flow"),
        other => panic!("expected a combined outcome, got {other:?}"),
    }
    let line = result.to_json_line();
    assert!(line.contains(r#""flow":"pair""#), "{line}");
    assert!(line.contains(r#""status":"ok""#), "{line}");
    assert!(multimode::engine::json::parse(&line).is_ok(), "{line}");
}

#[test]
fn four_mode_combined_flow_runs() {
    let circuits: Vec<LutCircuit> = (0..4)
        .map(|m| random_circuit(&format!("m{m}"), 8 + m % 2, 7300 + m as u64))
        .collect();
    // Four merged modes congest a pinned narrow channel (the
    // edge-matching leg especially); let the flow size the width the
    // paper's way (minimum + 20%) instead.
    let mut options = FlowOptions::default().with_seed(0x41);
    options.placer.inner_num = 1.0;
    let metrics = run_combined_n(&circuits, &options, "four").unwrap();
    assert_eq!(metrics.mode_luts.len(), 4);
    assert_eq!(metrics.tunable_stats.modes, 4);
    assert!(metrics.diff.routing_bits < metrics.mdr.routing_bits);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `run_combined_n` with N = 2 is byte-identical to `run_pair`:
    /// same annealed placements (every block, every leg), same metrics
    /// (placements, widths, routing fingerprints via the wire counts)
    /// and the same JSONL record bytes.
    #[test]
    fn combined_n2_is_byte_identical_to_pair(case in 0u64..1000) {
        let circuits = vec![
            random_circuit("m0", 10 + (case % 5) as usize, 6000 + case),
            random_circuit("m1", 11 + (case % 3) as usize, 6500 + case),
        ];
        let options = quick_options(0x5eed ^ case);
        let input = MultiModeInput::new(circuits.clone()).unwrap();

        // Stage 1 parity: every leg's placement assigns every block of
        // every mode to the same site.
        let via_pair = place_pair(&input, &options).unwrap();
        let via_n = place_combined_n(&input, &options).unwrap();
        for (m, c) in circuits.iter().enumerate() {
            for id in c.block_ids() {
                prop_assert_eq!(via_pair.mdr[m].site_of(id), via_n.mdr[m].site_of(id));
                prop_assert_eq!(via_pair.edge.modes[m].site_of(id), via_n.edge.modes[m].site_of(id));
                prop_assert_eq!(
                    via_pair.wirelength.modes[m].site_of(id),
                    via_n.wirelength.modes[m].site_of(id)
                );
            }
        }

        // Full-flow parity: metrics and record bytes.
        let pair = run_pair(&input, &options, "case").unwrap();
        let combined = run_combined_n(&circuits, &options, "case").unwrap();
        prop_assert_eq!(&pair, &combined);
        prop_assert_eq!(
            JobOutcome::Pair(pair).to_value().to_json(),
            JobOutcome::Pair(combined).to_value().to_json()
        );
    }
}
