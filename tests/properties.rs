//! Property-based tests (proptest) on the core data structures and the
//! central invariant of the paper: merging mode circuits into a tunable
//! circuit preserves every mode exactly.

use multimode::arch::{Architecture, Site};
use multimode::boolexpr::{qm, Expr, ModeSet, ModeSpace};
use multimode::flow::TunableCircuit;
use multimode::netlist::{blif, BlockId, LutCircuit, TruthTable};
use multimode::place::{verify_placement, MultiPlacement, Placement};
use proptest::prelude::*;

// ---------------------------------------------------------------- boolexpr

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quine–McCluskey minimisation is exact: the SOP evaluates to the
    /// mode set on every valid mode.
    #[test]
    fn qm_minimisation_is_equivalent(mode_count in 1usize..=16, mask: u64) {
        let space = ModeSpace::new(mode_count);
        let on = ModeSet::from_mask(mask) & space.all();
        let cubes = qm::minimize(on, space);
        for m in space.modes() {
            prop_assert_eq!(qm::eval_cubes(&cubes, m as u64), on.contains(m));
        }
        // The expression view agrees as well.
        let expr = on.to_expr(space);
        for m in space.modes() {
            prop_assert_eq!(expr.eval(m as u64), on.contains(m));
        }
    }

    /// Display → parse round trip of expressions built from mode sets.
    #[test]
    fn expr_roundtrips_through_text(mode_count in 1usize..=8, mask: u64) {
        let space = ModeSpace::new(mode_count);
        let on = ModeSet::from_mask(mask) & space.all();
        let expr = on.to_expr(space);
        let reparsed: Expr = expr.to_string().parse().expect("own display reparses");
        for m in space.modes() {
            prop_assert_eq!(reparsed.eval(m as u64), on.contains(m));
        }
    }

    /// Mode-set algebra is faithful boolean algebra on every mode.
    #[test]
    fn modeset_algebra(mode_count in 1usize..=16, a: u64, b: u64) {
        let space = ModeSpace::new(mode_count);
        let sa = ModeSet::from_mask(a) & space.all();
        let sb = ModeSet::from_mask(b) & space.all();
        for m in space.modes() {
            prop_assert_eq!((sa | sb).contains(m), sa.contains(m) || sb.contains(m));
            prop_assert_eq!((sa & sb).contains(m), sa.contains(m) && sb.contains(m));
            prop_assert_eq!(sa.complement(space).contains(m), !sa.contains(m));
        }
    }
}

// ------------------------------------------------------------- truth tables

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// extend_to adds don't-care inputs without changing the function.
    #[test]
    fn truth_extension_preserves_function(k in 1usize..=4, bits: u64, extra in 0usize..=2) {
        let t = TruthTable::from_bits(k, bits);
        let e = t.extend_to(k + extra);
        for idx in 0..(1usize << (k + extra)) {
            prop_assert_eq!(e.eval_index(idx), t.eval_index(idx & ((1 << k) - 1)));
        }
    }

    /// Permuting inputs twice with inverse permutations is the identity.
    #[test]
    fn truth_permutation_inverts(bits: u64, seed in 0u64..1000) {
        let k = 4usize;
        let t = TruthTable::from_bits(k, bits);
        // Build a permutation deterministically from the seed.
        let mut perm: Vec<usize> = (0..k).collect();
        let mut s = seed;
        for i in (1..k).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s as usize) % (i + 1));
        }
        let mut inverse = vec![0usize; k];
        for (new, &old) in perm.iter().enumerate() {
            inverse[old] = new;
        }
        prop_assert_eq!(t.permute(&perm).permute(&inverse), t);
    }

    /// Shannon expansion: f = x·f|x=1 + x̄·f|x=0.
    #[test]
    fn truth_shannon_expansion(bits: u64, var in 0usize..4) {
        let k = 4usize;
        let f = TruthTable::from_bits(k, bits);
        let x = TruthTable::var(k, var);
        let hi = f.cofactor(var, true);
        let lo = f.cofactor(var, false);
        prop_assert_eq!((x & hi) | (!x & lo), f);
    }

    /// Cover round trip: BLIF ON-set cover reproduces the table.
    #[test]
    fn truth_cover_roundtrip(k in 1usize..=4, bits: u64) {
        let t = TruthTable::from_bits(k, bits);
        let back = TruthTable::from_cover(k, &t.to_cover()).expect("valid cover");
        prop_assert_eq!(back, t);
    }
}

// ------------------------------------------------- random circuits + merge

/// Deterministic random circuit from a seed (proptest shrinks the seed).
fn build_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    let mut s = seed | 1;
    let mut next = move |bound: usize| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as usize) % bound.max(1)
    };
    let mut c = LutCircuit::new(name, 4);
    let mut drivers: Vec<BlockId> = (0..n_inputs)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    for j in 0..n_luts {
        let fanin = 1 + next(4.min(drivers.len()));
        let mut ins: Vec<BlockId> = Vec::new();
        while ins.len() < fanin {
            let d = drivers[next(drivers.len())];
            if !ins.contains(&d) {
                ins.push(d);
            }
        }
        let tt = TruthTable::from_bits(ins.len(), next(usize::MAX) as u64);
        let registered = next(5) == 0;
        let id = c.add_lut(format!("n{j}"), ins, tt, registered).unwrap();
        drivers.push(id);
    }
    let out = drivers[drivers.len() - 1];
    c.add_output("o0", out).unwrap();
    c
}

/// Random legal placement of `circuits` on `arch`.
fn random_placement(circuits: &[LutCircuit], arch: &Architecture, seed: u64) -> MultiPlacement {
    let mut s = seed | 1;
    let mut next = move |bound: usize| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as usize) % bound.max(1)
    };
    let logic: Vec<Site> = arch.logic_sites().collect();
    let io: Vec<Site> = arch.io_sites().collect();
    let mut modes = Vec::new();
    for c in circuits {
        let mut p = Placement::new(c.block_count());
        let mut logic_pool = logic.clone();
        let mut io_pool = io.clone();
        for id in c.block_ids() {
            let pool = if c.block(id).is_lut() {
                &mut logic_pool
            } else {
                &mut io_pool
            };
            let k = next(pool.len());
            p.assign(id, pool.swap_remove(k));
        }
        modes.push(p);
    }
    MultiPlacement { modes }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core merge invariant (paper §III): projecting the tunable
    /// circuit onto any mode reproduces exactly that mode's placed
    /// connections, and specialising any tunable LUT for a mode gives
    /// back the occupant's (extended) truth table.
    #[test]
    fn merge_projection_is_exact(seed in 0u64..10_000, luts_a in 4usize..14, luts_b in 4usize..14) {
        let a = build_circuit("a", 4, luts_a, seed.wrapping_mul(3) + 1);
        let b = build_circuit("b", 4, luts_b, seed.wrapping_mul(7) + 2);
        let circuits = vec![a, b];
        let arch = Architecture::new(4, 5, 4);
        let placement = random_placement(&circuits, &arch, seed + 11);
        verify_placement(&circuits, &arch, &placement).expect("random placement is legal");

        let tunable = TunableCircuit::from_placement(&circuits, &placement, &arch).unwrap();
        tunable.verify_projection(&circuits, &placement).unwrap();

        // Specialised truth tables match the occupants.
        for (m, c) in circuits.iter().enumerate() {
            for &id in c.luts() {
                let site = placement.modes[m].site_of(id);
                let spec = tunable.specialized_truth(&circuits, site, m).unwrap();
                if let multimode::netlist::BlockKind::Lut { truth, .. } = c.block(id).kind() {
                    prop_assert_eq!(spec, truth.extend_to(4));
                }
            }
        }

        // Connection counts: between max(modes) and sum(modes).
        let ca = circuits[0].connections().len();
        let cb = circuits[1].connections().len();
        let t = tunable.connections().len();
        prop_assert!(t <= ca + cb);
        prop_assert!(t >= ca.max(cb));
    }

    /// BLIF round trips preserve structure counts for random circuits.
    #[test]
    fn blif_roundtrip_preserves_behaviour(seed in 0u64..10_000, luts in 3usize..20) {
        let c = build_circuit("rt", 4, luts, seed + 5);
        let parsed = blif::from_blif(&blif::to_blif(&c), 4).expect("own BLIF parses");
        prop_assert_eq!(
            multimode::netlist::first_divergence(&c, &parsed, 64, seed).unwrap(),
            None
        );
    }
}

// -------------------------------------------------- synthesis equivalence

/// Random gate network built from a seed: a layered mix of gates and a
/// couple of flip-flops.
fn build_gate_network(seed: u64, gates: usize) -> multimode::netlist::GateNetwork {
    use multimode::netlist::{GateNetwork, SignalId};
    let mut s = seed | 1;
    let mut next = move |bound: usize| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as usize) % bound.max(1)
    };
    let mut net = GateNetwork::new("rnd");
    let mut signals: Vec<SignalId> = (0..4)
        .map(|i| net.add_input(format!("i{i}")).unwrap())
        .collect();
    for g in 0..gates {
        let a = signals[next(signals.len())];
        let b = signals[next(signals.len())];
        let sig = match next(6) {
            0 => net.and(a, b),
            1 => net.or(a, b),
            2 => net.xor(a, b),
            3 => net.not(a),
            4 => {
                let sel = signals[next(signals.len())];
                net.mux(sel, a, b)
            }
            _ => net.dff(a, next(2) == 0),
        };
        signals.push(sig);
        let _ = g;
    }
    for t in 0..2 {
        let sig = signals[signals.len() - 1 - t];
        net.add_output(format!("o{t}"), sig).unwrap();
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Technology mapping preserves cycle-accurate behaviour for random
    /// gate networks, across LUT widths.
    #[test]
    fn mapping_preserves_behaviour(seed in 0u64..10_000, gates in 5usize..40, k in 3usize..=6) {
        use multimode::netlist::{GateSimulator, LutSimulator};
        use multimode::synth::{synthesize, MapOptions};
        let net = build_gate_network(seed, gates);
        let mapped = synthesize(&net, MapOptions::for_k(k)).unwrap();
        // Every LUT respects the width.
        for &id in mapped.luts() {
            prop_assert!(mapped.block(id).fanin().len() <= k);
        }
        let mut gs = GateSimulator::new(&net);
        let mut ls = LutSimulator::new(&mapped).unwrap();
        let mut s = seed.wrapping_mul(31) | 1;
        for _ in 0..48 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let ins: Vec<bool> = (0..4).map(|i| (s >> (i + 7)) & 1 == 1).collect();
            prop_assert_eq!(gs.step(&ins), ls.step(&ins));
        }
    }

    /// Routing random placed circuits always yields structurally valid,
    /// capacity-respecting route trees (or a definite failure).
    #[test]
    fn routing_is_structurally_valid(seed in 0u64..10_000, luts in 4usize..16) {
        use multimode::route::{nets_for_circuit, verify_routing, Router, RouterOptions};
        use multimode::boolexpr::ModeSet;
        let circuit = build_circuit("r", 4, luts, seed + 77);
        let arch = Architecture::new(4, 5, 6)
            .with_fc(0.5, 0.5)
            .with_switch_pattern(multimode::arch::SwitchPattern::Wilton);
        let placement = random_placement(std::slice::from_ref(&circuit), &arch, seed + 3);
        let rrg = multimode::arch::RoutingGraph::build(&arch);
        let p0 = &placement.modes[0];
        let nets = nets_for_circuit(&circuit, &rrg, ModeSet::single(0), |b| p0.site_of(b));
        let mut router = Router::new(&rrg, RouterOptions::default());
        let routing = router.route(&nets);
        if routing.success {
            verify_routing(&rrg, &nets, &routing, 1).map_err(|e| {
                proptest::test_runner::TestCaseError::fail(e)
            })?;
        } else {
            prop_assert!(routing.overused_nodes > 0 || routing.unrouted_sinks > 0);
        }
    }
}
