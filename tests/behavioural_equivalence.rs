//! Behavioural equivalence across the front-end: generators → synthesis →
//! mapped circuits → BLIF round trips. These are the guarantees that make
//! the reconfiguration metrics meaningful — the circuits being merged
//! really are the circuits the generators specified.

use multimode::gen::fir::{lowpass_taps, specialized_fir, FirSpec};
use multimode::gen::regex::RegexEngine;
use multimode::gen::{mcnc, words::Word};
use multimode::netlist::{blif, first_divergence, GateSimulator, LutSimulator};
use multimode::synth::{synthesize, MapOptions};

#[test]
fn regex_engine_gate_vs_mapped() {
    let engine = RegexEngine::compile(r"(ab|ba)+[0-9]{2}x?", 4).unwrap();
    let mut gate = GateSimulator::new(engine.network());
    let mut lut = LutSimulator::new(engine.lut_circuit()).unwrap();
    let stream = b"abba42x baab07 ab12 zzz abab99x";
    for &byte in stream.iter() {
        let bits: Vec<bool> = (0..8).map(|i| (byte >> i) & 1 == 1).collect();
        assert_eq!(gate.step(&bits), lut.step(&bits));
    }
}

#[test]
fn regex_engine_blif_roundtrip() {
    let engine = RegexEngine::compile(r"GET /cmd\?[a-f0-9]{4}", 4).unwrap();
    let original = engine.lut_circuit();
    let text = blif::to_blif(original);
    let parsed = blif::from_blif(&text, 4).unwrap();
    assert_eq!(
        first_divergence(original, &parsed, 256, 0xfeed).unwrap(),
        None,
        "BLIF round trip must preserve behaviour"
    );
}

#[test]
fn fir_mapped_matches_reference() {
    let spec = FirSpec {
        name: "t".into(),
        taps: lowpass_taps(10, 5, 7, 5),
        data_width: 6,
    };
    let net = specialized_fir(&spec);
    let mapped = synthesize(&net, MapOptions::default()).unwrap();

    let mut gate = GateSimulator::new(&net);
    let mut lut = LutSimulator::new(&mapped).unwrap();
    let samples: Vec<u64> = vec![3, 60, 17, 0, 44, 9, 21, 33, 2, 63, 11, 50];
    for &s in &samples {
        let bits: Vec<bool> = (0..6).map(|i| (s >> i) & 1 == 1).collect();
        assert_eq!(gate.step(&bits), lut.step(&bits), "sample {s}");
    }
}

#[test]
fn mcnc_circuits_map_equivalently() {
    for (name, net) in [
        ("alu", mcnc::alu("alu6", 6)),
        ("mult", mcnc::multiplier("m5", 5)),
        ("crc", mcnc::crc("c8", 0xb8, 8, 4)),
        ("pla", mcnc::pla("p", 8, 6, 5, 4, 77)),
    ] {
        let mapped = synthesize(&net, MapOptions::default()).unwrap();
        let mut gate = GateSimulator::new(&net);
        let mut lut = LutSimulator::new(&mapped).unwrap();
        let n_in = net.inputs().len();
        let mut state = 0x1234_5678_9abc_def0u64 ^ name.len() as u64;
        for cycle in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ins: Vec<bool> = (0..n_in).map(|i| (state >> (i % 60)) & 1 == 1).collect();
            assert_eq!(gate.step(&ins), lut.step(&ins), "{name} cycle {cycle}");
        }
    }
}

#[test]
fn blif_roundtrip_of_sequential_datapath() {
    let mut net = multimode::netlist::GateNetwork::new("acc");
    let x = Word::inputs(&mut net, "x", 5);
    let acc_ff: Vec<_> = (0..6).map(|_| net.add_dff(false)).collect();
    let acc = Word::from_bits(acc_ff.clone());
    let xe = x.resize(&mut net, 6, false);
    let (sum, _) = acc.add(&mut net, &xe);
    for (i, &ff) in acc_ff.iter().enumerate() {
        net.connect_dff(ff, sum.bit(i)).unwrap();
    }
    acc.export(&mut net, "acc");
    let mapped = synthesize(&net, MapOptions::default()).unwrap();
    let text = blif::to_blif(&mapped);
    let parsed = blif::from_blif(&text, 4).unwrap();
    assert_eq!(
        first_divergence(&mapped, &parsed, 512, 0xace).unwrap(),
        None
    );
}

#[test]
fn suite_circuits_are_blif_stable() {
    // A slice of every suite survives BLIF round trips behaviourally.
    let circuits = vec![
        multimode::gen::regexp_suite(4).swap_remove(4),
        multimode::gen::fir_suite(4).swap_remove(0),
        multimode::gen::mcnc_suite(4).swap_remove(3),
    ];
    for c in &circuits {
        let parsed = blif::from_blif(&blif::to_blif(c), 4).unwrap();
        assert_eq!(
            first_divergence(c, &parsed, 128, 0xbeef).unwrap(),
            None,
            "{} round trip",
            c.name()
        );
    }
}
